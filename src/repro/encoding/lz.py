"""Final-stage lossless byte compression.

SZ3 finishes with a general-purpose lossless pass (zstd upstream).  We
provide two interchangeable backends behind one two-byte-tagged format:

* ``"lz77"`` — a from-scratch hash-chain LZ77 with greedy matching and a
  simple literal/match token stream.  This is the reference
  implementation used to validate the format and exercised by the test
  suite on bounded inputs (its inner loop is interpreted Python, so we
  do not put it on the hot path for large arrays).
* ``"zlib"`` — the C-speed DEFLATE from the Python standard library,
  the default production backend.  DEFLATE is itself LZ77 + Huffman,
  i.e. the same algorithm family as zstd's literal path, so the residual
  redundancy removal the Jin model estimates behaves comparably.

Both produce streams decodable by :func:`lossless_decompress` regardless
of which backend encoded them.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..core.errors import CorruptStreamError, OptionError

_TAG_RAW = 0
_TAG_ZLIB = 1
_TAG_LZ77 = 2

_MIN_MATCH = 4
_MAX_MATCH = 255 + _MIN_MATCH
_WINDOW = 1 << 16


def _lz77_compress(data: bytes) -> bytes:
    """Greedy hash-chain LZ77.

    Token format: a control byte per token; 0x00 prefixes a literal run
    (length byte + literals), 0x01 prefixes a match (2-byte distance,
    1-byte length-_MIN_MATCH).
    """
    n = len(data)
    out = bytearray()
    literals = bytearray()
    head: dict[bytes, int] = {}
    i = 0

    def flush_literals() -> None:
        j = 0
        while j < len(literals):
            chunk = literals[j : j + 255]
            out.append(0x00)
            out.append(len(chunk))
            out.extend(chunk)
            j += 255
        literals.clear()

    while i < n:
        match_len = 0
        match_dist = 0
        if i + _MIN_MATCH <= n:
            key = data[i : i + _MIN_MATCH]
            cand = head.get(key)
            if cand is not None and i - cand <= _WINDOW:
                # Extend the candidate match as far as it goes.
                length = _MIN_MATCH
                limit = min(_MAX_MATCH, n - i)
                while length < limit and data[cand + length] == data[i + length]:
                    length += 1
                match_len = length
                match_dist = i - cand
            head[key] = i
        if match_len >= _MIN_MATCH:
            flush_literals()
            out.append(0x01)
            out.extend(struct.pack("<HB", match_dist, match_len - _MIN_MATCH))
            # Insert hash entries sparsely inside the match to bound cost.
            step = max(1, match_len // 8)
            for k in range(i + 1, min(i + match_len, n - _MIN_MATCH), step):
                head[data[k : k + _MIN_MATCH]] = k
            i += match_len
        else:
            literals.append(data[i])
            i += 1
    flush_literals()
    return bytes(out)


def _lz77_decompress(stream: bytes, expected_size: int) -> bytes:
    out = bytearray()
    i = 0
    n = len(stream)
    while i < n:
        tag = stream[i]
        i += 1
        if tag == 0x00:
            if i >= n:
                raise CorruptStreamError("lz77 literal header truncated")
            count = stream[i]
            i += 1
            if i + count > n:
                raise CorruptStreamError("lz77 literal run truncated")
            out.extend(stream[i : i + count])
            i += count
        elif tag == 0x01:
            if i + 3 > n:
                raise CorruptStreamError("lz77 match token truncated")
            dist, extra = struct.unpack_from("<HB", stream, i)
            i += 3
            length = extra + _MIN_MATCH
            start = len(out) - dist
            if start < 0:
                raise CorruptStreamError("lz77 match reaches before stream start")
            for _ in range(length):  # overlapping copies are legal in LZ77
                out.append(out[start])
                start += 1
        else:
            raise CorruptStreamError(f"unknown lz77 token {tag}")
    if len(out) != expected_size:
        raise CorruptStreamError("lz77 output size mismatch")
    return bytes(out)


def lossless_compress(data: bytes | np.ndarray, backend: str = "zlib", level: int = 6) -> bytes:
    """Compress a byte payload with the chosen backend.

    If the backend expands the data (incompressible input), the stream is
    stored raw — the decoder handles all three tags transparently.
    """
    if isinstance(data, np.ndarray):
        data = np.ascontiguousarray(data).tobytes()
    if backend == "zlib":
        body = zlib.compress(data, level)
        tag = _TAG_ZLIB
    elif backend == "lz77":
        body = _lz77_compress(data)
        tag = _TAG_LZ77
    else:
        raise OptionError(f"unknown lossless backend {backend!r}")
    if len(body) >= len(data):
        tag, body = _TAG_RAW, data
    return struct.pack("<BQ", tag, len(data)) + body


def lossless_decompress(stream: bytes) -> bytes:
    """Decompress a stream from :func:`lossless_compress` (any backend)."""
    if len(stream) < 9:
        raise CorruptStreamError("lossless stream too short")
    tag, size = struct.unpack_from("<BQ", stream, 0)
    body = stream[9:]
    if tag == _TAG_RAW:
        if len(body) != size:
            raise CorruptStreamError("raw stream size mismatch")
        return body
    if tag == _TAG_ZLIB:
        out = zlib.decompress(body)
    elif tag == _TAG_LZ77:
        out = _lz77_decompress(body, size)
    else:
        raise CorruptStreamError(f"unknown lossless tag {tag}")
    if len(out) != size:
        raise CorruptStreamError("lossless output size mismatch")
    return out
