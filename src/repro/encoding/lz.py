"""Final-stage lossless byte compression.

SZ3 finishes with a general-purpose lossless pass (zstd upstream).  We
provide two interchangeable backends behind one two-byte-tagged format:

* ``"lz77"`` — a from-scratch hash-chain LZ77 with greedy matching and a
  simple literal/match token stream.  The encoder is a NumPy hash-chain
  matcher (rolling 4-byte keys from strided views, previous-occurrence
  chains from one stable argsort, match extension as chunked whole-slice
  compares); the decoder resolves the token list and the overlapping
  match copies with the same list-ranking/binary-lifting trick the
  Huffman decoder uses.  Both are bit-exact with the original
  interpreted loops — kept here as ``_lz77_compress_ref`` /
  ``_lz77_decompress_ref`` — which the golden-stream tests and the
  kernel benchmark hold them to.
* ``"zlib"`` — the C-speed DEFLATE from the Python standard library,
  the default production backend.  DEFLATE is itself LZ77 + Huffman,
  i.e. the same algorithm family as zstd's literal path, so the residual
  redundancy removal the Jin model estimates behaves comparably.

Both produce streams decodable by :func:`lossless_decompress` regardless
of which backend encoded them.

Token format (unchanged since the first release, so old checkpoints
still decode): a control byte per token; ``0x00`` prefixes a literal run
(length byte + literals), ``0x01`` prefixes a match (2-byte
little-endian distance, 1-byte ``length - 4``).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..core.errors import CorruptStreamError, OptionError

_TAG_RAW = 0
_TAG_ZLIB = 1
_TAG_LZ77 = 2

_MIN_MATCH = 4
_MAX_MATCH = 255 + _MIN_MATCH
_WINDOW = 1 << 16
#: chunk size for the C-speed slice compares in match extension.
_EXTEND_CHUNK = 32


def _flush_literals(out: bytearray, literals: bytearray) -> None:
    """Emit pending literals as 255-byte-max literal-run tokens."""
    j = 0
    while j < len(literals):
        chunk = literals[j : j + 255]
        out.append(0x00)
        out.append(len(chunk))
        out.extend(chunk)
        j += 255
    literals.clear()


def _lz77_compress_ref(data: bytes) -> bytes:
    """Reference greedy hash-chain LZ77 (interpreted, byte at a time).

    This is the original implementation the vectorized encoder must
    match byte for byte; it is exercised only by the golden-stream tests
    and as the kernel benchmark baseline.
    """
    n = len(data)
    out = bytearray()
    literals = bytearray()
    head: dict[bytes, int] = {}
    i = 0

    while i < n:
        match_len = 0
        match_dist = 0
        if i + _MIN_MATCH <= n:
            key = data[i : i + _MIN_MATCH]
            cand = head.get(key)
            # NB: strictly less than _WINDOW — the distance field is a
            # 16-bit integer, so a match at distance exactly 2^16 would
            # overflow struct.pack (a crash the original `<=` had).
            if cand is not None and i - cand < _WINDOW:
                # Extend the candidate match as far as it goes.
                length = _MIN_MATCH
                limit = min(_MAX_MATCH, n - i)
                while length < limit and data[cand + length] == data[i + length]:
                    length += 1
                match_len = length
                match_dist = i - cand
            head[key] = i
        if match_len >= _MIN_MATCH:
            _flush_literals(out, literals)
            out.append(0x01)
            out.extend(struct.pack("<HB", match_dist, match_len - _MIN_MATCH))
            # Insert hash entries sparsely inside the match to bound cost.
            step = max(1, match_len // 8)
            for k in range(i + 1, min(i + match_len, n - _MIN_MATCH), step):
                head[data[k : k + _MIN_MATCH]] = k
            i += match_len
        else:
            literals.append(data[i])
            i += 1
    _flush_literals(out, literals)
    return bytes(out)


def _lz77_decompress_ref(stream: bytes, expected_size: int) -> bytes:
    """Reference token-at-a-time decoder (see :func:`_lz77_compress_ref`)."""
    out = bytearray()
    i = 0
    n = len(stream)
    while i < n:
        tag = stream[i]
        i += 1
        if tag == 0x00:
            if i >= n:
                raise CorruptStreamError("lz77 literal header truncated")
            count = stream[i]
            i += 1
            if i + count > n:
                raise CorruptStreamError("lz77 literal run truncated")
            out.extend(stream[i : i + count])
            i += count
        elif tag == 0x01:
            if i + 3 > n:
                raise CorruptStreamError("lz77 match token truncated")
            dist, extra = struct.unpack_from("<HB", stream, i)
            i += 3
            length = extra + _MIN_MATCH
            start = len(out) - dist
            if start < 0 or dist == 0:
                raise CorruptStreamError("lz77 match reaches before stream start")
            for _ in range(length):  # overlapping copies are legal in LZ77
                out.append(out[start])
                start += 1
        else:
            raise CorruptStreamError(f"unknown lz77 token {tag}")
    if len(out) != expected_size:
        raise CorruptStreamError("lz77 output size mismatch")
    return bytes(out)


def _lz77_compress(data: bytes) -> bytes:
    """Vectorized greedy hash-chain LZ77, bit-exact with the reference.

    The sequential dictionary of the reference encoder is replaced by
    three precomputed whole-array structures:

    * ``keys[i]`` — the 4-byte rolling key at every position (strided
      uint32 arithmetic, no per-position slicing);
    * ``chain[i]`` — the previous position with the same key, for every
      position at once, from one stable argsort of the keys;
    * ``next_cand[i]`` — the next position at or after ``i`` whose key
      has occurred before (a reversed cumulative minimum), so runs of
      first-occurrence positions become one literal-run skip instead of
      one Python iteration per byte.

    The reference dictionary maps each key to its most recent *inserted*
    position (parse positions plus a sparse grid inside matches).  That
    is recovered exactly by walking ``chain`` until an inserted position
    is found: occurrences are visited newest-first, and because the
    parse only moves forward, the inserted/skipped status of every
    position behind the cursor is final — which also makes the walk's
    path compression safe.  Match extension compares
    ``_EXTEND_CHUNK``-byte slices at C speed instead of byte pairs.

    Positions whose key never occurred before cannot match, so the parse
    only has to stop at *repeat* positions.  When repeats are sparse
    (high-entropy input — the production case, since this stage runs on
    Huffman-coded streams) the sorted repeat list drives the skips; when
    they are dense, a reversed cumulative minimum (``next_cand``) gives
    the next repeat at or after every position in O(1).
    """
    n = len(data)
    out = bytearray()
    literals = bytearray()
    if n < _MIN_MATCH:
        literals.extend(data)
        _flush_literals(out, literals)
        return bytes(out)
    arr = np.frombuffer(data, dtype=np.uint8)
    m = n - (_MIN_MATCH - 1)  # number of positions with a full 4-byte key
    keys = arr[:m].astype(np.uint32)
    keys <<= 8
    keys |= arr[1 : m + 1]
    keys <<= 8
    keys |= arr[2 : m + 2]
    keys <<= 8
    keys |= arr[3 : m + 3]
    # Stable sort by key via one unstable sort of (key << 32 | position):
    # equal keys tie-break on position, which is exactly stability, and
    # a direct np.sort of the composite is ~4x faster than a stable
    # argsort (no indirection, introsort instead of mergesort).  The
    # packing bounds payloads at 2^32 bytes, far above the 2^16 window.
    comp = keys.astype(np.uint64) << np.uint64(32)
    comp |= np.arange(m, dtype=np.uint64)
    comp.sort()
    if np.little_endian:
        halves = comp.view(np.uint32)
        order = halves[0::2].astype(np.int64)
        sorted_keys = halves[1::2]
    else:
        order = (comp & np.uint64(0xFFFFFFFF)).astype(np.int64)
        sorted_keys = (comp >> np.uint64(32)).astype(np.uint32)
    prev = np.full(m, -1, dtype=np.int64)
    repeats: list[int] = []
    if m > 1:
        same = sorted_keys[1:] == sorted_keys[:-1]
        repeat_pos = order[1:][same]
        prev[repeat_pos] = order[:-1][same]
        repeats = np.sort(repeat_pos).tolist()
    nrepeats = len(repeats)
    sparse = nrepeats * 16 < m
    if sparse:
        # Few repeat positions: drive the skips straight off the sorted
        # repeat list and index `prev` without materialising a list.
        chain = prev
        next_cand: list[int] = []
    else:
        candidate_at = np.where(prev >= 0, np.arange(m, dtype=np.int64), m)
        next_cand = np.minimum.accumulate(candidate_at[::-1])[::-1].tolist()
        chain = prev.tolist()
    inserted = bytearray(m)
    i = 0
    ptr = 0
    while i < n:
        if i >= m:
            # No full key fits: everything left is literal (and never
            # enters the dictionary, matching the reference bound).
            literals.extend(data[i:])
            break
        if sparse:
            while ptr < nrepeats and repeats[ptr] < i:
                ptr += 1
            j = repeats[ptr] if ptr < nrepeats else m
        else:
            j = next_cand[i]
        if j > i:
            # Keys in [i, j) occur for the first time — no candidate is
            # possible, so the whole run is literal.  Every position
            # still enters the dictionary.
            inserted[i:j] = b"\x01" * (j - i)
            literals.extend(data[i:j])
            i = j
            continue
        # Resolve the most recent *inserted* occurrence (the dict value)
        # by walking the occurrence chain, compressing the path.
        j = chain[i]
        if j >= 0 and not inserted[j]:
            path = []
            while j >= 0 and not inserted[j]:
                path.append(j)
                j = chain[j]
            for x in path:
                chain[x] = j
        cand = j
        inserted[i] = 1
        if cand < 0 or i - cand >= _WINDOW:
            literals.append(data[i])
            i += 1
            continue
        # Extend the match with chunked slice compares (both sides read
        # the original data, so overlapping matches behave identically).
        limit = min(_MAX_MATCH, n - i)
        length = _MIN_MATCH
        while length < limit:
            chunk = min(_EXTEND_CHUNK, limit - length)
            if data[cand + length : cand + length + chunk] == data[i + length : i + length + chunk]:
                length += chunk
                continue
            a = data[cand + length : cand + length + chunk]
            b = data[i + length : i + length + chunk]
            off = 0
            while a[off] == b[off]:
                off += 1
            length += off
            break
        _flush_literals(out, literals)
        dist = i - cand
        out.append(0x01)
        out.append(dist & 0xFF)
        out.append(dist >> 8)
        out.append(length - _MIN_MATCH)
        stop = min(i + length, n - _MIN_MATCH)
        step = max(1, length // 8)
        for k in range(i + 1, stop, step):
            inserted[k] = 1
        i += length
    _flush_literals(out, literals)
    return bytes(out)


def _range_mask(starts: np.ndarray, ends: np.ndarray, size: int) -> np.ndarray:
    """Boolean mask of ``size`` selecting the union of ``[start, end)``.

    The ranges come from non-overlapping token regions, so a +1/-1
    difference array followed by one cumulative sum marks every covered
    index.  A range's end may coincide with the next range's start
    (adjacent tokens); the start writes happen first, so the decrement
    lands on top and the running sum stays in {0, 1}.  Zero-length
    ranges must be filtered by the caller.
    """
    diff = np.zeros(size + 1, dtype=np.int8)
    diff[starts] = 1
    diff[ends] -= 1
    return np.cumsum(diff[:size], dtype=np.int8).astype(bool)


def _lz77_decompress(stream: bytes, expected_size: int) -> bytes:
    """Vectorized LZ77 decoder (list-ranking over tokens and matches).

    Token starts are found without a sequential walk: a per-byte jump
    array ``J[p] = p + size-of-token-at-p`` is evaluated everywhere at
    once, and the token-start list is grown by binary lifting, exactly
    like the Huffman decoder's code-boundary ranking — each round
    composes ``J`` with itself and doubles the number of known starts,
    so a stream of T tokens needs ``log2(T)`` whole-array rounds.
    Literal runs become one masked copy from stream to output;
    overlapping match copies are resolved by pointer doubling on the
    ``output-position → source-position`` reference array (every chain
    strictly decreases until it hits a literal byte, so ``log2`` rounds
    of ``ref = ref[ref]`` reach the fixpoint).
    """
    n = len(stream)
    if n == 0:
        if expected_size:
            raise CorruptStreamError("lz77 output size mismatch")
        return b""
    s = np.frombuffer(stream, dtype=np.uint8)
    lit_mask = s == 0
    match_mask = s == 1
    next_byte = np.empty(n, dtype=np.int64)
    next_byte[:-1] = s[1:]
    next_byte[-1] = 0
    size_at = np.ones(n, dtype=np.int64)
    size_at[lit_mask] = next_byte[lit_mask] + 2
    size_at[match_mask] = 4
    jump = np.arange(n + 1, dtype=np.int64)
    jump[:n] += size_at
    np.minimum(jump, n, out=jump)  # clamp into the sink (n maps to n)
    # Binary lifting: after round j the first 2^j token starts are known
    # and `step` equals jump^(2^j); appending step[tok] doubles the list.
    # Tokens found past the first sink hit are clipped, so the loop runs
    # ceil(log2(T)) rounds for a T-token stream.
    tok = np.zeros(1, dtype=np.int64)
    step = jump
    while True:
        nxt = step[tok]
        alive = nxt < n
        if not alive.all():
            tok = np.concatenate([tok, nxt[alive]])
            break
        tok = np.concatenate([tok, nxt])
        step = step[step]
    # Classify per-token corruption and honour the reference decoder's
    # first-error-in-stream-order semantics.
    tok_tags = s[tok]
    bad_tag = tok_tags > 1
    lit_tok = tok_tags == 0
    match_tok = tok_tags == 1
    lit_trunc = lit_tok & (tok == n - 1)
    counts = np.where(lit_tok & ~lit_trunc, next_byte[tok], 0)
    lit_overrun = lit_tok & ~lit_trunc & (tok + 2 + counts > n)
    match_trunc = match_tok & (tok + 4 > n)
    # Decode headers for the non-truncated matches (the only ones whose
    # bytes are all in range) so underflow checks can join the ordered
    # failure resolution: offsets are exact for every token before the
    # earliest failure, which is the only one the reference reports.
    valid_match = match_tok & ~match_trunc
    mpos = tok[valid_match]
    dists = s[mpos + 1].astype(np.int64) + (s[mpos + 2].astype(np.int64) << 8)
    mlens = s[mpos + 3].astype(np.int64) + _MIN_MATCH
    out_sizes = np.where(lit_tok, counts, 0)
    out_sizes[valid_match] = mlens
    out_offsets = np.concatenate(([0], np.cumsum(out_sizes)[:-1]))
    total = int(out_sizes.sum())
    match_out = out_offsets[valid_match]
    match_bad = (dists == 0) | (match_out < dists)
    failures = [
        (int(tok[mask][0]), message)
        for mask, message in (
            (bad_tag, None),
            (lit_trunc, "lz77 literal header truncated"),
            (lit_overrun, "lz77 literal run truncated"),
            (match_trunc, "lz77 match token truncated"),
        )
        if mask.any()
    ]
    if match_bad.any():
        failures.append(
            (int(mpos[match_bad][0]), "lz77 match reaches before stream start")
        )
    if failures:
        first, message = min(failures)
        if message is None:
            raise CorruptStreamError(f"unknown lz77 token {int(s[first])}")
        raise CorruptStreamError(message)
    if total != expected_size:
        raise CorruptStreamError("lz77 output size mismatch")
    if total == 0:
        return b""
    out = np.empty(total, dtype=np.uint8)
    lp = tok[lit_tok]
    lc = counts[lit_tok]
    nz = lc > 0
    if nz.any():
        # The k-th literal byte in stream order is the k-th literal byte
        # in output order, so two range masks give one aligned copy.
        lit_out = out_offsets[lit_tok][nz]
        src_starts = lp[nz] + 2
        out[_range_mask(lit_out, lit_out + lc[nz], total)] = s[
            _range_mask(src_starts, src_starts + lc[nz], n)
        ]
    if mpos.size:
        ref = np.arange(total, dtype=np.int64)
        dst_mask = _range_mask(match_out, match_out + mlens, total)
        ref[dst_mask] -= np.repeat(dists, mlens)
        # Pointer doubling: every chain strictly decreases through match
        # bytes until it lands on a literal byte (a fixpoint).
        while True:
            hop = ref[ref]
            if np.array_equal(hop, ref):
                break
            ref = hop
        out = out[ref]
    return out.tobytes()


def lossless_compress(data: bytes | np.ndarray, backend: str = "zlib", level: int = 6) -> bytes:
    """Compress a byte payload with the chosen backend.

    ``level`` is the zlib compression level (``-1`` for the zlib default,
    else 0–9); the ``lz77`` backend has a single effort setting and
    ignores it.  If the backend expands the data (incompressible input),
    the stream is stored raw — the decoder handles all three tags
    transparently.
    """
    if isinstance(data, np.ndarray):
        data = np.ascontiguousarray(data).tobytes()
    if backend == "zlib":
        level = int(level)
        if not -1 <= level <= 9:
            raise OptionError(f"zlib level must be -1..9, got {level}")
        body = zlib.compress(data, level)
        tag = _TAG_ZLIB
    elif backend == "lz77":
        body = _lz77_compress(data)
        tag = _TAG_LZ77
    else:
        raise OptionError(f"unknown lossless backend {backend!r}")
    if len(body) >= len(data):
        tag, body = _TAG_RAW, data
    return struct.pack("<BQ", tag, len(data)) + body


def lossless_decompress(stream: bytes) -> bytes:
    """Decompress a stream from :func:`lossless_compress` (any backend)."""
    if len(stream) < 9:
        raise CorruptStreamError("lossless stream too short")
    tag, size = struct.unpack_from("<BQ", stream, 0)
    body = stream[9:]
    if tag == _TAG_RAW:
        if len(body) != size:
            raise CorruptStreamError("raw stream size mismatch")
        return body
    if tag == _TAG_ZLIB:
        try:
            out = zlib.decompress(body)
        except zlib.error as exc:
            # Keep corrupt payloads inside the harness's error taxonomy
            # (Status mapping, checkpoint quarantine) instead of leaking
            # a raw zlib.error.
            raise CorruptStreamError(f"zlib body corrupt: {exc}") from exc
    elif tag == _TAG_LZ77:
        out = _lz77_decompress(body, size)
    else:
        raise CorruptStreamError(f"unknown lossless tag {tag}")
    if len(out) != size:
        raise CorruptStreamError("lossless output size mismatch")
    return out
