"""Vectorised bit-level I/O on NumPy arrays.

Variable-length entropy coders need to concatenate millions of codes of
differing bit lengths.  A per-symbol Python loop would dominate the
runtime of the whole library (the hpc-parallel guides' first rule:
vectorise the hot loop), so both directions are expressed as whole-array
NumPy operations:

* **packing** — given per-symbol ``(code, length)`` arrays, bit offsets
  come from a cumulative sum of lengths and each *bit plane* of the codes
  is scattered with one vectorised masked assignment (at most
  ``max_length`` passes, independent of the number of symbols);
* **unpacking** — ``np.unpackbits`` plus sliding windows give the
  ``k``-bit integer starting at *every* bit position in one shot, which
  is the primitive the table-driven Huffman decoder builds on.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import CorruptStreamError


def pack_codes(codes: np.ndarray, lengths: np.ndarray) -> tuple[bytes, int]:
    """Concatenate variable-length codes into a packed byte string.

    Parameters
    ----------
    codes:
        Unsigned integer code values; only the low ``lengths[i]`` bits of
        ``codes[i]`` are emitted, most-significant bit first.
    lengths:
        Bit length of each code (0 is allowed and emits nothing).

    Returns
    -------
    (payload, total_bits):
        The packed bytes (zero padded to a byte boundary) and the exact
        number of meaningful bits.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape:
        raise ValueError("codes and lengths must have the same shape")
    if codes.size == 0:
        return b"", 0
    total_bits = int(lengths.sum())
    if total_bits == 0:
        return b"", 0
    # Start offset of each code in the output bit stream.
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    bits = np.zeros(total_bits, dtype=np.uint8)
    max_len = int(lengths.max())
    for j in range(max_len):
        # Bit j (from the MSB of each code) lands at offset + j for every
        # code long enough to have that bit.
        mask = lengths > j
        if not mask.any():
            continue
        shift = (lengths[mask] - 1 - j).astype(np.uint64)
        bits[offsets[mask] + j] = ((codes[mask] >> shift) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits).tobytes(), total_bits


def unpack_bits(payload: bytes, total_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_codes`' packing: the raw bit array."""
    if total_bits == 0:
        return np.zeros(0, dtype=np.uint8)
    if len(payload) * 8 < total_bits:
        raise CorruptStreamError("bit payload shorter than declared length")
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
    return bits[:total_bits]


def windows_at_every_position(bits: np.ndarray, width: int) -> np.ndarray:
    """Return the ``width``-bit integer starting at every bit position.

    The stream is zero padded on the right so positions near the end are
    well defined.  Output dtype is int64; ``out[p]`` reads bits
    ``p .. p+width-1`` MSB-first.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    n = bits.size
    padded = np.concatenate([bits.astype(np.int64), np.zeros(width, dtype=np.int64)])
    view = np.lib.stride_tricks.sliding_window_view(padded, width)[: max(n, 1)]
    weights = (np.int64(1) << np.arange(width - 1, -1, -1, dtype=np.int64))
    return view @ weights


def uint_bit_length(values: np.ndarray) -> np.ndarray:
    """Exact bit length of unsigned integers, vectorised (0 maps to 0).

    Float ``log2`` width math silently breaks past 2**53: the implicit
    float64 conversion rounds ``q + 1`` back down to ``q``, so e.g.
    ``ceil(log2(2**53 + 1))`` evaluates to 53 while 2**53 needs 54 bits —
    one bit short, and the packed codes truncate.  This is the integer
    replacement: a branchless binary search over the value's high bits,
    six whole-array passes for the full uint64 range.
    """
    v = np.asarray(values, dtype=np.uint64).copy()
    out = np.zeros(v.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        mask = v >= (np.uint64(1) << np.uint64(shift))
        out[mask] += shift
        v[mask] >>= np.uint64(shift)
    return out + (v > 0)


def write_uint_array(values: np.ndarray, bit_width: int) -> bytes:
    """Pack fixed-width unsigned integers (used for escape values)."""
    values = np.asarray(values, dtype=np.uint64)
    lengths = np.full(values.shape, bit_width, dtype=np.int64)
    payload, _ = pack_codes(values, lengths)
    return payload


def read_uint_array(payload: bytes, bit_width: int, count: int) -> np.ndarray:
    """Inverse of :func:`write_uint_array`."""
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    bits = unpack_bits(payload, bit_width * count)
    mat = bits.reshape(count, bit_width).astype(np.uint64)
    weights = (np.uint64(1) << np.arange(bit_width - 1, -1, -1, dtype=np.uint64))
    return mat @ weights
