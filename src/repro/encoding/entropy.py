"""Entropy and coding-efficiency mathematics.

Shared by the entropy coders (to size their outputs), the Jin 2022
ratio-quality model (Huffman efficiency estimation), the Ganguli 2023
coding-gain feature, and the Krasowska/Underwood quantized-entropy
feature.
"""

from __future__ import annotations

import numpy as np


def histogram_probabilities(values: np.ndarray) -> np.ndarray:
    """Empirical symbol probabilities of a discrete array (sorted by symbol)."""
    values = np.asarray(values).reshape(-1)
    if values.size == 0:
        return np.zeros(0, dtype=np.float64)
    _, counts = np.unique(values, return_counts=True)
    return counts / values.size


def shannon_entropy(probabilities: np.ndarray) -> float:
    """Shannon entropy in bits of a probability vector (zeros ignored)."""
    p = np.asarray(probabilities, dtype=np.float64)
    p = p[p > 0]
    if p.size == 0:
        return 0.0
    return float(-np.sum(p * np.log2(p)))


def empirical_entropy(values: np.ndarray) -> float:
    """Shannon entropy (bits/symbol) of the empirical distribution."""
    return shannon_entropy(histogram_probabilities(values))


def quantized_entropy(data: np.ndarray, abs_bound: float) -> float:
    """Entropy of the data after quantization to a ``2*abs_bound`` grid.

    This is the *quantized entropy* feature of Krasowska 2021: a proxy
    for the information content that an error-bounded compressor must
    preserve.  Error-dependent (the grid width is ``2*eb``).
    """
    if abs_bound <= 0:
        raise ValueError("abs_bound must be positive")
    flat = np.asarray(data, dtype=np.float64).reshape(-1)
    codes = np.round(flat / (2.0 * abs_bound))
    return empirical_entropy(codes)


def huffman_expected_length(probabilities: np.ndarray) -> float:
    """Upper-bound estimate of Huffman bits/symbol: ``H(p) + redundancy``.

    Huffman codes satisfy ``H(p) <= L < H(p) + 1``; the Gallager bound
    tightens the redundancy to ``p_max + 0.086`` when the most probable
    symbol has probability ``p_max < 0.5``.  Jin's analytic model uses
    exactly this style of estimate for the encoding stage.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    p = p[p > 0]
    if p.size == 0:
        return 0.0
    if p.size == 1:
        return 1.0  # a single symbol still costs one bit per symbol in practice
    h = shannon_entropy(p)
    pmax = float(p.max())
    if pmax >= 0.5:
        redundancy = min(1.0, pmax + 0.086)  # degenerate distributions
    else:
        redundancy = pmax + 0.086
    return h + min(redundancy, 1.0)


def coding_gain(data: np.ndarray, block: int = 8) -> float:
    """Classic coding gain: arithmetic/geometric mean ratio of block variances.

    High coding gain means a transform/predictor can concentrate energy —
    data with very uneven local variance compresses well after
    decorrelation.  Used as a feature by Ganguli 2023.
    """
    flat = np.asarray(data, dtype=np.float64).reshape(-1)
    n = (flat.size // block) * block
    if n == 0:
        return 1.0
    blocks = flat[:n].reshape(-1, block)
    var = blocks.var(axis=1) + 1e-30
    arithmetic = float(var.mean())
    geometric = float(np.exp(np.mean(np.log(var))))
    return arithmetic / geometric


def cross_entropy_bits(counts: np.ndarray, model_probs: np.ndarray) -> float:
    """Total bits to code *counts* occurrences under *model_probs*.

    Used to estimate the cost of coding one block with the global code
    table (the SECRE-style sampled-stage estimate).
    """
    counts = np.asarray(counts, dtype=np.float64)
    q = np.asarray(model_probs, dtype=np.float64)
    mask = counts > 0
    if not mask.any():
        return 0.0
    q = np.clip(q[mask], 1e-12, 1.0)
    return float(-np.sum(counts[mask] * np.log2(q)))
