"""Run-length encoding utilities (vectorised).

Sparse scientific fields (the Hurricane moisture variables) contain long
constant runs — usually zeros — that dominate their compressibility.
These helpers find runs with ``np.diff``/``np.flatnonzero`` (no Python
loop over elements) and are used by the SZx-style codec, by the sparsity
feature metrics, and as an optional pre-stage for the Huffman coder.
"""

from __future__ import annotations

import struct

import numpy as np

from ..core.errors import CorruptStreamError


def find_runs(values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decompose a 1-D array into maximal constant runs.

    Returns ``(starts, lengths, run_values)`` such that
    ``values[starts[i]:starts[i]+lengths[i]] == run_values[i]``.
    """
    values = np.asarray(values).reshape(-1)
    if values.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, values[:0]
    change = np.flatnonzero(values[1:] != values[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [values.size]))
    return starts.astype(np.int64), (ends - starts).astype(np.int64), values[starts]


def rle_encode(values: np.ndarray) -> bytes:
    """Serialise an int64 array as (count, run_values, run_lengths)."""
    values = np.asarray(values, dtype=np.int64).reshape(-1)
    _, lengths, run_values = find_runs(values)
    head = struct.pack("<QQ", values.size, lengths.size)
    return head + run_values.astype("<i8").tobytes() + lengths.astype("<i8").tobytes()


def rle_decode(stream: bytes) -> np.ndarray:
    """Inverse of :func:`rle_encode` using ``np.repeat``."""
    if len(stream) < 16:
        raise CorruptStreamError("rle stream too short")
    total, nruns = struct.unpack_from("<QQ", stream, 0)
    need = 16 + 16 * nruns
    if len(stream) < need:
        raise CorruptStreamError("rle stream truncated")
    run_values = np.frombuffer(stream, dtype="<i8", count=nruns, offset=16)
    lengths = np.frombuffer(stream, dtype="<i8", count=nruns, offset=16 + 8 * nruns)
    out = np.repeat(run_values, lengths)
    if out.size != total:
        raise CorruptStreamError("rle length mismatch")
    return out.astype(np.int64)


def zero_run_ratio(values: np.ndarray, zero: float = 0.0, atol: float = 0.0) -> float:
    """Fraction of elements sitting in runs of the given value.

    A cheap, error-agnostic sparsity indicator used by the Rahman 2023
    feature set (its "sparsity correction factor" input).
    """
    values = np.asarray(values).reshape(-1)
    if values.size == 0:
        return 0.0
    if atol > 0:
        mask = np.abs(values - zero) <= atol
    else:
        mask = values == zero
    return float(mask.mean())


def longest_run(values: np.ndarray) -> int:
    """Length of the longest constant run (any value)."""
    _, lengths, _ = find_runs(values)
    return int(lengths.max(initial=0))
