"""Tests for the dataset substrate: loaders, caches, sampling, hurricane."""

import os

import numpy as np
import pytest

from repro.core import OptionError
from repro.dataset import (
    FIELDS,
    SPARSE_THRESHOLDS,
    DeviceMover,
    FolderLoader,
    HurricaneDataset,
    HurricaneGenerator,
    IOLoader,
    LocalCache,
    MemoryCache,
    SampledDataset,
    dataset_registry,
    make_dataset,
    parse_field_timestep,
    read_array,
    sample_blocks,
    spectral_field,
    standard_test_fields,
    write_array,
)


class TestIOLoader:
    def test_npy_roundtrip(self, tmp_path):
        arr = np.random.default_rng(0).standard_normal((6, 7)).astype(np.float32)
        path = str(tmp_path / "a.npy")
        write_array(path, arr)
        loader = IOLoader([path])
        assert len(loader) == 1
        meta = loader.load_metadata(0)
        assert meta["shape"] == (6, 7)
        assert meta["dtype"] == "float32"
        out = loader.load_data(0)
        assert np.array_equal(out.array, arr)
        assert out.metadata["file"] == path

    def test_raw_binary_needs_dtype(self, tmp_path):
        path = str(tmp_path / "a.bin")
        np.arange(10, dtype=np.float32).tofile(path)
        loader = IOLoader([path])
        with pytest.raises(OptionError):
            loader.load_data(0)
        loader.set_options({"io:dtype": "float32", "io:shape": [2, 5]})
        out = loader.load_data(0)
        assert out.shape == (2, 5)

    def test_f32_extension_implies_dtype(self, tmp_path):
        path = str(tmp_path / "a.f32")
        np.arange(8, dtype=np.float32).tofile(path)
        out = read_array(path)
        assert out.dtype == np.float32 and out.size == 8

    def test_unknown_extension(self, tmp_path):
        path = str(tmp_path / "a.xyz")
        open(path, "w").close()
        with pytest.raises(OptionError):
            read_array(path)

    def test_load_counters(self, tmp_path):
        path = str(tmp_path / "a.npy")
        write_array(path, np.zeros((4, 4), dtype=np.float32))
        loader = IOLoader([path])
        loader.load_data(0)
        loader.load_data(0)
        res = loader.get_metrics_results()
        assert res["io:loads"] == 2
        assert res["io:bytes_loaded"] == 128


class TestFolderLoader:
    def test_pattern_and_metadata(self, tmp_path):
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0, 1], fields=["P", "U"])
        ds.write_to_directory(str(tmp_path))
        loader = FolderLoader(str(tmp_path), "*.npy")
        assert len(loader) == 4
        metas = loader.load_metadata_all()
        assert {m["field"] for m in metas} == {"P", "U"}
        assert {m["timestep"] for m in metas} == {0, 1}
        data = loader.load_data(0)
        assert data.metadata["field"] in ("P", "U")

    def test_rescan_picks_up_new_files(self, tmp_path):
        write_array(str(tmp_path / "A_t00.npy"), np.zeros((2, 2), np.float32))
        loader = FolderLoader(str(tmp_path), "*.npy")
        assert len(loader) == 1
        write_array(str(tmp_path / "B_t00.npy"), np.zeros((2, 2), np.float32))
        loader.rescan()
        assert len(loader) == 2

    def test_parse_field_timestep(self):
        assert parse_field_timestep("QRAIN_t07.npy") == {"field": "QRAIN", "timestep": 7}
        assert parse_field_timestep("no-pattern.npy") == {}

    def test_deterministic_order(self, tmp_path):
        for name in ("C_t00.npy", "A_t00.npy", "B_t00.npy"):
            write_array(str(tmp_path / name), np.zeros(2, np.float32))
        loader = FolderLoader(str(tmp_path), "*.npy")
        fields = [loader.load_metadata(i)["field"] for i in range(3)]
        assert fields == ["A", "B", "C"]


class TestCaches:
    def test_memory_cache_hits(self, tiny_hurricane):
        cache = MemoryCache(tiny_hurricane, capacity_bytes=1 << 24)
        cache.load_data(0)
        cache.load_data(0)
        assert cache.hits == 1 and cache.misses == 1

    def test_memory_cache_eviction(self, tiny_hurricane):
        entry_bytes = tiny_hurricane.load_data(0).nbytes
        cache = MemoryCache(tiny_hurricane, capacity_bytes=entry_bytes)  # fits one
        cache.load_data(0)
        cache.load_data(1)  # evicts 0
        cache.load_data(0)
        assert cache.hits == 0 and cache.misses == 3

    def test_memory_cache_entries_immune_to_caller_mutation(self, tiny_hurricane):
        """Cached entries are shared by reference across hits: a caller
        mutating the array would corrupt every later load.  The cache
        freezes its entries so the mutation raises instead."""
        cache = MemoryCache(tiny_hurricane, capacity_bytes=1 << 24)
        first = cache.load_data(0)
        pristine = first.array.copy()
        with pytest.raises(ValueError):
            first.array[...] = -1.0
        again = cache.load_data(0)
        assert np.array_equal(again.array, pristine)
        # Entries too large to cache stay writable (not shared).
        huge = MemoryCache(tiny_hurricane, capacity_bytes=1)
        assert huge.load_data(0).array.flags.writeable

    def test_local_cache_spills_and_restores(self, tmp_path, tiny_hurricane):
        cache = LocalCache(tiny_hurricane, cache_dir=str(tmp_path / "spill"))
        a = cache.load_data(0)
        b = cache.load_data(0)
        assert cache.hits == 1 and cache.misses == 1
        assert np.array_equal(a.array, b.array)
        # A fresh process (new instance) finds the same spill.
        cache2 = LocalCache(tiny_hurricane, cache_dir=str(tmp_path / "spill"))
        cache2.load_data(0)
        assert cache2.hits == 1

    def test_local_cache_invalidate(self, tmp_path, tiny_hurricane):
        cache = LocalCache(tiny_hurricane, cache_dir=str(tmp_path / "spill"))
        cache.load_data(0)
        cache.invalidate(0)
        cache.load_data(0)
        assert cache.misses == 2

    def test_device_mover_tags(self, tiny_hurricane):
        mover = DeviceMover(tiny_hurricane)
        assert mover.load_data(0).domain == "device"

    def test_stacked_metrics_merge(self, tmp_path, tiny_hurricane):
        stack = MemoryCache(LocalCache(tiny_hurricane, cache_dir=str(tmp_path / "s")))
        stack.load_data(0)
        res = stack.get_metrics_results()
        assert "memory_cache:hits" in res and "local_cache:hits" in res


class TestSampler:
    def test_count_selection(self, small_hurricane):
        sub = SampledDataset(small_hurricane, count=5, seed=3)
        assert len(sub) == 5
        assert sub.load_metadata(0)["data_id"].startswith("hurricane/")

    def test_fraction_selection(self, small_hurricane):
        sub = SampledDataset(small_hurricane, fraction=0.25, seed=3)
        assert len(sub) == round(0.25 * len(small_hurricane))

    def test_stride_selection(self, small_hurricane):
        sub = SampledDataset(small_hurricane, stride=3)
        assert len(sub) == (len(small_hurricane) + 2) // 3

    def test_source_index_tracks_back(self, small_hurricane):
        sub = SampledDataset(small_hurricane, count=4, seed=1)
        for i in range(4):
            src = sub.source_index(i)
            assert sub.load_metadata(i) == small_hurricane.load_metadata(src)

    def test_requires_a_selector(self, small_hurricane):
        with pytest.raises(ValueError):
            SampledDataset(small_hurricane)

    def test_sample_blocks_shape(self):
        arr = np.arange(32 * 32, dtype=float).reshape(32, 32)
        blocks = sample_blocks(arr, block=8, fraction=0.5, seed=0)
        assert blocks.shape[1] == 64
        assert 4 <= blocks.shape[0] <= 16

    def test_sample_blocks_small_array_fallback(self):
        arr = np.arange(6, dtype=float)
        blocks = sample_blocks(arr, block=8)
        assert blocks.shape == (1, 6)

    def test_sample_blocks_deterministic(self):
        arr = np.random.default_rng(0).standard_normal((16, 16))
        a = sample_blocks(arr, block=4, fraction=0.3, seed=9)
        b = sample_blocks(arr, block=4, fraction=0.3, seed=9)
        assert np.array_equal(a, b)


class TestHurricane:
    def test_thirteen_fields(self):
        assert len(FIELDS) == 13

    def test_entry_mapping(self, tiny_hurricane):
        assert len(tiny_hurricane) == 8  # 4 fields x 2 steps
        assert tiny_hurricane.entry(2) == (tiny_hurricane.fields[1], 0)
        assert tiny_hurricane.entry(3) == (tiny_hurricane.fields[1], 24)

    def test_sparse_fields_have_zeros(self):
        # At mid-track (where the threshold is calibrated) the coverage
        # matches the nominal quantile; elsewhere it drifts with the
        # storm's intensity.
        gen = HurricaneGenerator(shape=(16, 16, 8), timesteps=8)
        for field, quantile in SPARSE_THRESHOLDS.items():
            sparsity = gen.sparsity(field, 4)
            assert sparsity == pytest.approx(quantile, abs=0.1), field

    def test_sparsity_evolves_with_storm(self):
        gen = HurricaneGenerator(shape=(16, 16, 8), timesteps=48)
        coverages = [gen.sparsity("CLOUD", t) for t in range(0, 48, 8)]
        assert max(coverages) - min(coverages) > 0.05
        # The developing storm has *less* hydrometeor coverage (more
        # zeros) than the mature stage.
        assert coverages[0] > gen.sparsity("CLOUD", 24)

    def test_dense_fields_have_no_zeros(self):
        gen = HurricaneGenerator(shape=(16, 16, 8), timesteps=4)
        for field in ("U", "V", "P", "TC"):
            assert gen.sparsity(field, 0) < 0.01

    def test_deterministic_generation(self):
        a = HurricaneGenerator(shape=(8, 8, 4)).generate("QRAIN", 5)
        b = HurricaneGenerator(shape=(8, 8, 4)).generate("QRAIN", 5)
        assert np.array_equal(a, b)

    def test_temporal_coherence(self):
        gen = HurricaneGenerator(shape=(16, 16, 8), timesteps=48)
        a = gen.generate("P", 10).astype(np.float64)
        b = gen.generate("P", 11).astype(np.float64)
        far = gen.generate("P", 30).astype(np.float64)
        def corr(x, y):
            return float(np.corrcoef(x.ravel(), y.ravel())[0, 1])
        assert corr(a, b) > corr(a, far)

    def test_unknown_field_rejected(self):
        gen = HurricaneGenerator(shape=(8, 8, 4))
        with pytest.raises(ValueError):
            gen.generate("NOTAFIELD", 0)
        with pytest.raises(ValueError):
            HurricaneDataset(shape=(8, 8, 4), fields=["NOTAFIELD"])

    def test_timestep_out_of_range(self):
        gen = HurricaneGenerator(shape=(8, 8, 4), timesteps=4)
        with pytest.raises(ValueError):
            gen.generate("P", 4)

    def test_metadata_marks_sparse(self, tiny_hurricane):
        metas = tiny_hurricane.load_metadata_all()
        by_field = {m["field"]: m["sparse"] for m in metas}
        assert by_field["QRAIN"] is True
        assert by_field["P"] is False

    def test_configuration_is_hashable_stable(self, tiny_hurricane):
        from repro.core import options_hash

        a = options_hash(tiny_hurricane.get_configuration())
        b = options_hash(
            HurricaneDataset(
                shape=(16, 16, 8), timesteps=[0, 24], fields=["P", "U", "QRAIN", "CLOUD"]
            ).get_configuration()
        )
        assert a == b

    def test_spectral_field_normalised(self):
        f = spectral_field((16, 16, 8), seed=1)
        assert f.std() == pytest.approx(1.0, abs=1e-6)
        assert f.shape == (16, 16, 8)

    def test_registry_construction(self):
        ds = make_dataset("hurricane", shape=(8, 8, 4), timesteps=[0], fields=["P"])
        assert len(ds) == 1


class TestSynthetic:
    def test_standard_test_fields(self):
        ds = standard_test_fields(shape=(8, 8, 4))
        assert len(ds) == 4
        names = [ds.load_metadata(i)["field"] for i in range(4)]
        assert names == ["smooth", "rough", "sparse", "constant"]
        sparse = ds.load_data(2).array
        assert (sparse == 0).mean() > 0.5

    def test_reproducible_entries(self):
        a = standard_test_fields(seed=5).load_data(1).array
        b = standard_test_fields(seed=5).load_data(1).array
        assert np.array_equal(a, b)

    def test_registry_contains_all_plugins(self):
        for name in ("io", "folder", "hurricane", "synthetic", "sample",
                     "local_cache", "memory_cache", "device"):
            assert name in dataset_registry
