"""Shared fixtures: small deterministic fields and datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset import HurricaneDataset


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def smooth_field() -> np.ndarray:
    """A smooth 3-D float32 field (highly compressible)."""
    x, y, z = np.meshgrid(
        np.linspace(0, 3, 24), np.linspace(0, 3, 24), np.linspace(0, 1.5, 12),
        indexing="ij",
    )
    noise = np.random.default_rng(7).standard_normal(x.shape) * 0.01
    return (np.sin(x) * np.cos(y) * np.exp(-0.4 * z) + noise).astype(np.float32)


@pytest.fixture(scope="session")
def sparse_field(smooth_field) -> np.ndarray:
    """A mostly-zero field (the hard case the paper highlights)."""
    gate = np.random.default_rng(8).random(smooth_field.shape) > 0.85
    return np.where(gate, np.abs(smooth_field), 0.0).astype(np.float32)

@pytest.fixture(scope="session")
def rough_field() -> np.ndarray:
    """Uncorrelated noise (nearly incompressible)."""
    return np.random.default_rng(9).standard_normal((24, 24, 12)).astype(np.float32)


@pytest.fixture(scope="session")
def tiny_hurricane() -> HurricaneDataset:
    """A 4-field, 2-timestep Hurricane subset at tiny resolution."""
    return HurricaneDataset(
        shape=(16, 16, 8), timesteps=[0, 24], fields=["P", "U", "QRAIN", "CLOUD"]
    )


@pytest.fixture(scope="session")
def small_hurricane() -> HurricaneDataset:
    """All 13 fields at one timestep (for grouped-CV style tests)."""
    return HurricaneDataset(shape=(16, 16, 8), timesteps=[0, 12, 24])
