"""Property tests for cross-cutting invariants, plus small-module
coverage (errors, report)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.report import format_row, format_table2, rows_to_records
from repro.bench.runner import StageStat, Table2Row
from repro.compressors import make_compressor
from repro.core import (
    ERROR_AGNOSTIC,
    ERROR_DEPENDENT,
    RUNTIME,
    PressioError,
    Status,
    TaskFailedError,
)
from repro.predict import expand_invalidations, is_invalidated

SPECIALS = [ERROR_AGNOSTIC, ERROR_DEPENDENT, RUNTIME]
KEYS = ["pressio:abs", "pressio:rel", "sz3:predictor", "sz3:lossless", "zfp:rate"]


@pytest.fixture(scope="module")
def sz3():
    return make_compressor("sz3", pressio__abs=1e-3)


class TestInvalidationAlgebra:
    @given(
        declared=st.lists(st.sampled_from(SPECIALS + KEYS), min_size=1, max_size=3),
        changed=st.lists(st.sampled_from(SPECIALS + KEYS), max_size=4),
        extra=st.sampled_from(SPECIALS + KEYS),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_changed_set(self, sz3, declared, changed, extra):
        """Adding to the change-set can only ever invalidate *more*."""
        before = is_invalidated(tuple(declared), changed, sz3)
        after = is_invalidated(tuple(declared), changed + [extra], sz3)
        assert after or not before

    @given(declared=st.lists(st.sampled_from(SPECIALS + KEYS), min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_empty_change_set_never_invalidates(self, sz3, declared):
        assert not is_invalidated(tuple(declared), [], sz3)

    @given(changed=st.lists(st.sampled_from(SPECIALS + KEYS), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_expansion_superset(self, sz3, changed):
        expanded = expand_invalidations(changed, sz3)
        assert set(changed) <= set(expanded)

    def test_self_match(self, sz3):
        """Every key invalidates a metric that declared exactly it."""
        for key in SPECIALS + KEYS:
            assert is_invalidated((key,), [key], sz3), key


class TestStatusAndErrors:
    def test_status_codes_distinct(self):
        codes = [s.value for s in Status]
        assert len(codes) == len(set(codes))
        assert Status.SUCCESS == 0
        assert Status.WARNING < 0

    def test_error_carries_status(self):
        err = PressioError("boom", status=Status.UNSUPPORTED)
        assert err.status == Status.UNSUPPORTED

    def test_task_failed_carries_key(self):
        err = TaskFailedError("nope", task_key="abc123")
        assert err.task_key == "abc123"
        assert err.status == Status.TASK_FAILED

    def test_exception_hierarchy(self):
        from repro.core import (
            BoundViolationError,
            CorruptStreamError,
            MissingOptionError,
            OptionError,
            TypeMismatchError,
            UnsupportedError,
        )

        for cls in (
            BoundViolationError,
            CorruptStreamError,
            MissingOptionError,
            OptionError,
            TypeMismatchError,
            UnsupportedError,
        ):
            assert issubclass(cls, PressioError)


class TestReportFormatting:
    def _row(self, **kw):
        row = Table2Row(method=kw.pop("method", "khan2023"), compressor="sz3")
        for key, value in kw.items():
            setattr(row, key, value)
        return row

    def test_unsupported_row_renders_na(self):
        row = self._row(method="jin2022", supported=False)
        text = format_row(row)
        assert text.count("N/A") >= 5

    def test_baseline_row_renders_comp_decomp(self):
        row = Table2Row(method="sz3", compressor="sz3")
        row.compress = StageStat.from_samples([0.1])
        row.decompress = StageStat.from_samples([0.05])
        text = format_row(row)
        assert "/" in text and "100.00" in text

    def test_nan_medape_renders_na(self):
        row = self._row(medape_pct=float("nan"))
        assert "N/A" in format_row(row)

    def test_records_roundtrip_nan_to_none(self):
        row = self._row(medape_pct=float("nan"))
        rec = rows_to_records([row])[0]
        assert math.isnan(rec["medape_pct"])
        assert rec["error_dependent_ms"] is None

    def test_title_included(self):
        text = format_table2([], title="My Table")
        assert text.startswith("My Table")


class TestCompressorStreamsAreSelfContained:
    """A stream produced by one instance decodes on a *fresh* instance
    with default options (everything needed lives in the stream)."""

    @pytest.mark.parametrize("name", ["sz3", "zfp", "szx", "sperr"])
    def test_cross_instance_decode(self, name, smooth_field):
        src = make_compressor(name, pressio__abs=2.5e-4)
        if name == "sz3":
            src.set_options({"sz3:predictor": "interp", "sz3:interp_max_stride": 8})
        stream = src.compress(smooth_field).tobytes()
        dst = make_compressor(name)  # default options
        recon = dst.decompress(stream)
        err = np.abs(
            recon.array.astype(np.float64) - smooth_field.astype(np.float64)
        ).max()
        assert err <= 2.5e-4 * 1.001
