"""Unit tests for the kernel-vectorization bugfix batch.

Covers the headline float-width packing bug (``log2``-based widths
silently truncate codes once ``qmax >= 2**53``), the LZ77 window-edge
crash at distance exactly 65536, lossless wrapper hygiene (level
validation, ``zlib.error`` containment), and equivalence of the
vectorized canonical-table build with the per-symbol scatter loop it
replaced.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CorruptStreamError, OptionError
from repro.core.compressor import compressor_registry
import repro.compressors  # noqa: F401  (registers the plugins)
from repro.compressors.zfp import pack_width_groups, unpack_width_groups
from repro.encoding import huffman, uint_bit_length
from repro.encoding.lz import (
    _lz77_compress,
    _lz77_compress_ref,
    _lz77_decompress,
    _lz77_decompress_ref,
    lossless_compress,
    lossless_decompress,
)


class TestUintBitLength:
    def test_matches_int_bit_length_at_edges(self):
        edges = [
            0, 1, 2, 3, 4, 7, 8, 255, 256,
            2**31 - 1, 2**31, 2**32,
            2**52, 2**53 - 1, 2**53, 2**53 + 1, 2**53 + 2,
            2**62, 2**63 - 1, 2**63, 2**64 - 1,
        ]
        got = uint_bit_length(np.array(edges, dtype=np.uint64))
        assert got.tolist() == [v.bit_length() for v in edges]

    def test_float_log2_idiom_is_wrong_above_2_53(self):
        """Documents the bug being fixed: float rounding loses the top bit."""
        q = 2**53
        float_width = int(np.floor(np.log2(float(q)))) + 1  # the old idiom
        assert float_width == 54  # looks fine here...
        q = 2**54 - 1  # ...but rounds *up* to 2**54 as a float
        float_width = int(np.floor(np.log2(float(q)))) + 1
        assert float_width == 55  # over-wide: wrong width grouping
        assert int(uint_bit_length(np.array([q], dtype=np.uint64))[0]) == 54


class TestSzxWidePacking:
    def test_qmax_above_2_53_roundtrips(self):
        """Regression for the headline bug: a block whose quantized span
        needs 54 bits must survive the width-grouped packing exactly.
        On the float-``log2`` widths this decoded the top code as 0."""
        eb = 0.5  # quantizer step 2*eb = 1.0: codes are the values themselves
        values = np.array([0.0, float(2**53), 1.0, 3.0], dtype=np.float64)
        comp = compressor_registry.create("szx")
        comp.set_options({"pressio:abs": eb, "szx:block_size": 4})
        stream = comp.compress_impl(values)
        decoded = comp.decompress_impl(stream, values.dtype, values.shape)
        assert float(np.abs(decoded - values).max()) <= eb

    def test_mixed_width_blocks_roundtrip(self):
        eb = 0.5
        values = np.concatenate(
            [
                [0.0, float(2**53), 1.0, 3.0],  # 54-bit block
                [0.0, 3.0, 1.0, 2.0],  # 2-bit block
                [5.0, 5.0, 5.0, 5.0],  # constant block
            ]
        )
        comp = compressor_registry.create("szx")
        comp.set_options({"pressio:abs": eb, "szx:block_size": 4})
        decoded = comp.decompress_impl(
            comp.compress_impl(values), values.dtype, values.shape
        )
        assert float(np.abs(decoded - values).max()) <= eb


class TestZfpWidthGroups:
    def test_widths_are_exact_bit_lengths(self):
        codes = np.array(
            [
                [0, 0, 0],
                [1, 0, 0],
                [2**53 - 1, 5, 0],
                [2**53, 1, 2],
                [2**64 - 1, 0, 0],
            ],
            dtype=np.uint64,
        )
        payload, widths = pack_width_groups(codes)
        assert widths.tolist() == [0, 1, 53, 54, 64]
        out = unpack_width_groups(payload, widths, codes.shape[1])
        assert np.array_equal(out, codes)

    def test_truncated_payload_raises(self):
        codes = np.array([[7, 1], [1000, 3]], dtype=np.uint64)
        payload, widths = pack_width_groups(codes)
        with pytest.raises(CorruptStreamError):
            unpack_width_groups(payload[:-1], widths, codes.shape[1])


class TestLosslessWrapper:
    def test_truncated_zlib_body_is_corrupt_stream_error(self):
        stream = lossless_compress(b"hello world, hello world " * 64, backend="zlib")
        with pytest.raises(CorruptStreamError, match="zlib body corrupt"):
            lossless_decompress(stream[:-5])

    def test_garbage_zlib_body_is_corrupt_stream_error(self):
        stream = lossless_compress(b"hello world, hello world " * 64, backend="zlib")
        mangled = stream[:9] + b"\xff" + stream[10:]
        with pytest.raises(CorruptStreamError):
            lossless_decompress(mangled)

    def test_zlib_level_validated(self):
        data = b"abc" * 100
        for level in (-1, 0, 6, 9):
            assert lossless_decompress(lossless_compress(data, level=level)) == data
        for level in (-2, 10, 42):
            with pytest.raises(OptionError, match="zlib level"):
                lossless_compress(data, level=level)

    def test_lz77_backend_ignores_level(self):
        data = b"the quick brown fox " * 50
        streams = {lossless_compress(data, backend="lz77", level=lv) for lv in (-1, 0, 9)}
        assert len(streams) == 1
        assert lossless_decompress(streams.pop()) == data


class TestLZ77WindowEdge:
    """Matches at distance exactly 65536 crashed the seed encoder
    (``struct.pack("<H", 65536)``); the window test must be strict."""

    MARKER = b"\xf0\xf1\xf2\xf3\xf4\xf5"

    def _payload(self, gap: int) -> bytes:
        # Filler bytes stay < 0x80 so no window ever equals the marker key.
        rng = np.random.default_rng(65536)
        filler = rng.integers(0, 128, gap, dtype=np.int64).astype(np.uint8).tobytes()
        return self.MARKER + filler + self.MARKER

    def test_distance_65535_still_matches(self):
        payload = self._payload(65535 - len(self.MARKER))
        stream = _lz77_compress(payload)
        assert stream == _lz77_compress_ref(payload)
        assert b"\x01\xff\xff" in stream  # match token at dist 0xFFFF
        assert _lz77_decompress(stream, len(payload)) == payload

    def test_distance_65536_is_rejected_not_crashed(self):
        payload = self._payload(65536 - len(self.MARKER))
        stream = _lz77_compress(payload)
        assert stream == _lz77_compress_ref(payload)
        assert b"\x01\x00\x00" not in stream  # no wrapped-distance token
        assert _lz77_decompress(stream, len(payload)) == payload
        assert _lz77_decompress_ref(stream, len(payload)) == payload


def _scatter_loop_tables(code: huffman.HuffmanCode) -> tuple[np.ndarray, np.ndarray]:
    """The retired per-symbol reference build."""
    width = max(code.max_length, 1)
    size = 1 << width
    sym_table = np.zeros(size, dtype=np.int64)
    len_table = np.zeros(size, dtype=np.int64)
    for i in range(code.symbols.size):
        l = int(code.lengths[i])
        if l == 0:
            continue
        b = int(code.codes[i]) << (width - l)
        s = 1 << (width - l)
        sym_table[b : b + s] = i
        len_table[b : b + s] = l
    return sym_table, len_table


class TestDecodeTables:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_vectorized_build_matches_scatter_loop(self, seed):
        rng = np.random.default_rng(seed)
        sym = rng.integers(-40, 40, 5000, dtype=np.int64)
        code = huffman.build_code(sym)
        ref = _scatter_loop_tables(code)
        got = code.decode_tables()
        assert np.array_equal(ref[0], got[0])
        assert np.array_equal(ref[1], got[1])

    def test_single_symbol_code(self):
        code = huffman.build_code(np.zeros(10, dtype=np.int64))
        ref = _scatter_loop_tables(code)
        got = code.decode_tables()
        assert np.array_equal(ref[0], got[0])
        assert np.array_equal(ref[1], got[1])

    def test_non_canonical_fallback_matches_scatter_loop(self):
        """Gappy (non-tiling) code tables take the fallback branch and
        must preserve the later-code-overwrites semantics exactly."""
        code = huffman.HuffmanCode(
            symbols=np.array([5, 9], dtype=np.int64),
            lengths=np.array([2, 2], dtype=np.int64),
            codes=np.array([0, 3], dtype=np.uint64),
        )
        ref = _scatter_loop_tables(code)
        got = code.decode_tables()
        assert np.array_equal(ref[0], got[0])
        assert np.array_equal(ref[1], got[1])
        overlap = huffman.HuffmanCode(
            symbols=np.array([1, 2, 3], dtype=np.int64),
            lengths=np.array([1, 1, 2], dtype=np.int64),
            codes=np.array([0, 0, 1], dtype=np.uint64),
        )
        ref = _scatter_loop_tables(overlap)
        got = overlap.decode_tables()
        assert np.array_equal(ref[0], got[0])
        assert np.array_equal(ref[1], got[1])


class TestVectorizedReferenceEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=2000))
    def test_encode_matches_reference(self, payload):
        stream = _lz77_compress(payload)
        assert stream == _lz77_compress_ref(payload)
        assert _lz77_decompress(stream, len(payload)) == payload

    @settings(max_examples=30, deadline=None)
    @given(
        st.binary(min_size=1, max_size=64),
        st.integers(min_value=1, max_value=200),
    )
    def test_repetitive_payloads_match_reference(self, motif, reps):
        payload = motif * reps
        stream = _lz77_compress(payload)
        assert stream == _lz77_compress_ref(payload)
        assert _lz77_decompress(stream, len(payload)) == payload
        assert _lz77_decompress_ref(stream, len(payload)) == payload
