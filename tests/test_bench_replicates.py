"""Replicates for nondeterministic metrics (§4.2 / future work 4)."""

import numpy as np
import pytest

from repro.bench import ExperimentRunner
from repro.compressors import make_compressor
from repro.core import PressioData
from repro.dataset import HurricaneDataset
from repro.predict import MetricsEvaluator
from repro.predict.metrics import SampledTrialMetric


class TestRunnerReplicates:
    def test_replicates_multiply_tasks_with_distinct_keys(self):
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P"])
        base = ExperimentRunner(
            ds, compressors=("szx",), bounds=(1e-4,), schemes=("tao2019",), replicates=1
        )
        repl = ExperimentRunner(
            ds, compressors=("szx",), bounds=(1e-4,), schemes=("tao2019",), replicates=3
        )
        t1, t3 = base.build_tasks(), repl.build_tasks()
        assert len(t3) == 3 * len(t1)
        assert len({t.key() for t in t3}) == len(t3)

    def test_replicated_observations_carry_replicate_id(self):
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P"])
        runner = ExperimentRunner(
            ds, compressors=("szx",), bounds=(1e-4,), schemes=("tao2019",), replicates=2
        )
        obs, stats, _ = runner.collect()
        assert stats.failed == 0
        assert sorted(o["replicate"] for o in obs) == [0, 1]

    def test_bandwidth_spread_across_replicates(self):
        """Replicates give runtime metrics (bandwidth) their spread."""
        ds = HurricaneDataset(shape=(12, 12, 8), timesteps=[0], fields=["P"])
        runner = ExperimentRunner(
            ds, compressors=("szx",), bounds=(1e-4,), schemes=("tao2019",), replicates=3
        )
        obs, _, _ = runner.collect()
        bws = [o["derived:compress_bandwidth"] for o in obs]
        assert len(bws) == 3
        assert all(b > 0 for b in bws)


class TestNondeterministicCaching:
    def test_fresh_replicates_when_disabled(self, smooth_field):
        comp = make_compressor("szx", pressio__abs=1e-3)
        from repro.core.compressor import clone_compressor

        metric = SampledTrialMetric(clone_compressor(comp), fraction=0.2)
        ev = MetricsEvaluator(comp, [metric], cache_nondeterministic=False)
        data = PressioData(smooth_field, metadata={"data_id": "s"})
        ev.evaluate(data)
        ev.evaluate(data, changed=[])
        # Nondeterministic + runtime metric: recomputed both times.
        assert ev.computed == 2 and ev.reused == 0

    def test_trial_metric_never_cached_even_when_enabled(self, smooth_field):
        """SampledTrialMetric declares RUNTIME, which is never cached."""
        comp = make_compressor("szx", pressio__abs=1e-3)
        from repro.core.compressor import clone_compressor

        metric = SampledTrialMetric(clone_compressor(comp), fraction=0.2)
        ev = MetricsEvaluator(comp, [metric], cache_nondeterministic=True)
        data = PressioData(smooth_field, metadata={"data_id": "s"})
        ev.evaluate(data)
        ev.evaluate(data, changed=[])
        assert ev.computed == 2

    def test_svd_cached_by_default(self, smooth_field):
        from repro.predict.metrics import SVDTruncationMetric

        comp = make_compressor("sz3", pressio__abs=1e-3)
        ev = MetricsEvaluator(comp, [SVDTruncationMetric()])
        data = PressioData(smooth_field, metadata={"data_id": "s"})
        ev.evaluate(data)
        ev.evaluate(data, changed=["pressio:abs"])
        assert ev.reused == 1  # error-agnostic + nondeterministic → cached


class TestProtocols:
    """Future work 1: in-sample vs out-of-sample evaluation protocols."""

    @pytest.fixture(scope="class")
    def observations(self):
        ds = HurricaneDataset(shape=(12, 12, 8), timesteps=[0, 24])
        runner = ExperimentRunner(
            ds, compressors=("sz3",), bounds=(1e-4,), schemes=("rahman2023",)
        )
        obs, stats, _ = runner.collect()
        assert stats.failed == 0
        return ds, obs

    def test_invalid_protocol_rejected(self):
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P"])
        with pytest.raises(ValueError):
            ExperimentRunner(ds, schemes=(), protocol="leave_one_out")

    def test_in_sample_at_least_as_accurate(self, observations):
        ds, obs = observations
        kwargs = dict(compressors=("sz3",), bounds=(1e-4,), schemes=("rahman2023",), n_folds=5)
        out = ExperimentRunner(ds, protocol="out_of_sample", **kwargs)
        ins = ExperimentRunner(ds, protocol="in_sample", **kwargs)
        from repro.predict import get_scheme

        scheme = get_scheme("rahman2023")
        row_out = out.evaluate_scheme(scheme, "sz3", obs)
        row_in = ins.evaluate_scheme(scheme, "sz3", obs)
        assert np.isfinite(row_out.medape_pct) and np.isfinite(row_in.medape_pct)
        # The best-case (in-sample) protocol should not be worse.
        assert row_in.medape_pct <= row_out.medape_pct * 1.2
