"""Tests for the invalidation model (§4.2) — the paper's core semantics."""

import pytest

from repro.compressors import make_compressor
from repro.core import (
    ERROR_AGNOSTIC,
    ERROR_DEPENDENT,
    NONDETERMINISTIC,
    RUNTIME,
    TRAINING,
)
from repro.predict import (
    classify_option_key,
    dependency_options,
    expand_invalidations,
    is_cacheable,
    is_invalidated,
)


@pytest.fixture
def sz3():
    return make_compressor("sz3", pressio__abs=1e-4)


class TestClassify:
    def test_error_affecting_option(self, sz3):
        assert classify_option_key("pressio:abs", sz3) == ERROR_DEPENDENT
        assert classify_option_key("sz3:predictor", sz3) == ERROR_DEPENDENT

    def test_runtime_hints(self, sz3):
        assert classify_option_key("sz3:nthreads", sz3) == RUNTIME
        assert classify_option_key("sz3:lossless", sz3) == RUNTIME

    def test_unknown_is_conservatively_error_dependent(self, sz3):
        assert classify_option_key("sz3:mystery", sz3) == ERROR_DEPENDENT

    def test_special_keys_pass_through(self, sz3):
        assert classify_option_key(ERROR_AGNOSTIC, sz3) == ERROR_AGNOSTIC
        assert classify_option_key(TRAINING, sz3) == TRAINING


class TestExpand:
    def test_concrete_key_implies_class(self, sz3):
        expanded = expand_invalidations(["pressio:abs"], sz3)
        assert "pressio:abs" in expanded
        assert ERROR_DEPENDENT in expanded

    def test_special_key_not_reexpanded(self, sz3):
        expanded = expand_invalidations([ERROR_AGNOSTIC], sz3)
        assert expanded == frozenset({ERROR_AGNOSTIC})


class TestIsInvalidated:
    def test_error_dependent_metric_on_bound_change(self, sz3):
        # A metric declaring the class is hit by a concrete bound change.
        assert is_invalidated((ERROR_DEPENDENT,), ["pressio:abs"], sz3)

    def test_error_agnostic_metric_survives_bound_change(self, sz3):
        assert not is_invalidated((ERROR_AGNOSTIC,), ["pressio:abs"], sz3)

    def test_error_agnostic_metric_hit_by_explicit_class(self, sz3):
        assert is_invalidated((ERROR_AGNOSTIC,), [ERROR_AGNOSTIC], sz3)

    def test_concrete_declaration_matches_itself(self, sz3):
        assert is_invalidated(("sz3:predictor",), ["sz3:predictor"], sz3)
        assert not is_invalidated(("sz3:predictor",), ["sz3:block"], sz3)

    def test_concrete_declaration_hit_by_class_wholesale(self, sz3):
        # Figure 4: a metric declaring "pressio:abs" is triggered when the
        # caller names the whole error_dependent class.
        assert is_invalidated(("pressio:abs",), [ERROR_DEPENDENT], sz3)

    def test_runtime_option_does_not_hit_error_metrics(self, sz3):
        assert not is_invalidated((ERROR_DEPENDENT,), ["sz3:nthreads"], sz3)
        assert is_invalidated((RUNTIME,), ["sz3:nthreads"], sz3)

    def test_empty_change_set_invalidates_nothing(self, sz3):
        assert not is_invalidated((ERROR_DEPENDENT, ERROR_AGNOSTIC), [], sz3)


class TestDependencyOptions:
    def test_error_dependent_keys(self, sz3):
        deps = dependency_options((ERROR_DEPENDENT,), sz3)
        assert deps["pressio:abs"] == 1e-4
        assert deps["sz3:predictor"] == "lorenzo"

    def test_error_agnostic_depends_on_nothing(self, sz3):
        assert len(dependency_options((ERROR_AGNOSTIC,), sz3)) == 0

    def test_concrete_key(self, sz3):
        deps = dependency_options(("pressio:abs",), sz3)
        assert deps.to_dict() == {"pressio:abs": 1e-4}

    def test_changes_with_bound(self, sz3):
        from repro.core import options_hash

        before = options_hash(dependency_options((ERROR_DEPENDENT,), sz3))
        sz3.set_options({"pressio:abs": 1e-6})
        after = options_hash(dependency_options((ERROR_DEPENDENT,), sz3))
        assert before != after


class TestCacheability:
    def test_runtime_never_cacheable(self):
        assert not is_cacheable((RUNTIME,))
        assert not is_cacheable((RUNTIME,), cache_nondeterministic=False)

    def test_nondeterministic_default_cacheable(self):
        assert is_cacheable((ERROR_AGNOSTIC, NONDETERMINISTIC))
        assert not is_cacheable(
            (ERROR_AGNOSTIC, NONDETERMINISTIC), cache_nondeterministic=False
        )

    def test_plain_metrics_cacheable(self):
        assert is_cacheable((ERROR_DEPENDENT,))
        assert is_cacheable((ERROR_AGNOSTIC,))
