"""Tests for the mlkit regressors: linear, ridge, splines, tree, forest,
mixture, conformal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlkit import (
    ConformalRegressor,
    DecisionTreeRegressor,
    LinearRegression,
    MixtureLinearRegression,
    NaturalSplineRegression,
    RandomForestRegressor,
    Ridge,
    coverage,
    r2_score,
)
from repro.mlkit.splines import natural_cubic_basis, quantile_knots
from repro.mlkit.tree import best_split_for_feature


@pytest.fixture(scope="module")
def linear_data():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((200, 3))
    y = 1.5 + X @ np.array([2.0, -1.0, 0.5]) + 0.01 * rng.standard_normal(200)
    return X, y


@pytest.fixture(scope="module")
def nonlinear_data():
    rng = np.random.default_rng(1)
    X = rng.uniform(-2, 2, size=(300, 2))
    y = np.sin(2 * X[:, 0]) + X[:, 1] ** 2 + 0.05 * rng.standard_normal(300)
    return X, y


class TestLinear:
    def test_recovers_coefficients(self, linear_data):
        X, y = linear_data
        model = LinearRegression().fit(X, y)
        assert model.intercept_ == pytest.approx(1.5, abs=0.05)
        assert model.coef_ == pytest.approx([2.0, -1.0, 0.5], abs=0.05)

    def test_1d_feature_accepted(self):
        x = np.linspace(0, 1, 50)
        y = 3 * x + 1
        model = LinearRegression().fit(x[:, None], y)
        assert model.predict(np.array([[0.5]]))[0] == pytest.approx(2.5)

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.array([[np.nan]]), np.array([1.0]))

    def test_ridge_shrinks_towards_zero(self, linear_data):
        X, y = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = Ridge(alpha=1e4).fit(X, y)
        assert np.linalg.norm(ridge.coef_) < np.linalg.norm(ols.coef_)

    def test_ridge_alpha_zero_matches_ols(self, linear_data):
        X, y = linear_data
        a = LinearRegression().fit(X, y).predict(X)
        b = Ridge(alpha=1e-10).fit(X, y).predict(X)
        assert np.allclose(a, b, atol=1e-6)


class TestSplines:
    def test_basis_shape(self):
        x = np.linspace(0, 1, 40)
        knots = quantile_knots(x, 5)
        basis = natural_cubic_basis(x, knots)
        assert basis.shape == (40, len(knots) - 1)

    def test_basis_linear_beyond_boundaries(self):
        knots = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        x = np.array([2.0, 3.0, 4.0])  # beyond the last knot
        basis = natural_cubic_basis(x, knots)
        # Second differences of a linear function vanish.
        second_diff = basis[2] - 2 * basis[1] + basis[0]
        assert np.abs(second_diff).max() < 1e-8

    def test_fits_nonlinear_function(self, nonlinear_data):
        X, y = nonlinear_data
        spline = NaturalSplineRegression(n_knots=8).fit(X, y)
        linear = LinearRegression().fit(X, y)
        assert r2_score(y, spline.predict(X)) > r2_score(y, linear.predict(X)) + 0.1

    def test_few_distinct_values_degrades_gracefully(self):
        X = np.repeat([[0.0], [1.0]], 10, axis=0)
        y = X[:, 0] * 2
        model = NaturalSplineRegression(n_knots=5).fit(X, y)
        assert model.predict(np.array([[1.0]]))[0] == pytest.approx(2.0, abs=1e-3)


class TestTree:
    def test_best_split_obvious(self):
        x = np.array([0.0, 0.0, 1.0, 1.0])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        gain, thr = best_split_for_feature(x, y, 1)
        assert gain > 0
        assert 0.0 < thr < 1.0

    def test_best_split_constant_feature(self):
        gain, thr = best_split_for_feature(np.ones(10), np.arange(10.0), 1)
        assert gain == -np.inf

    def test_best_split_min_leaf_respected(self):
        x = np.arange(6, dtype=float)
        y = np.array([0, 0, 0, 0, 0, 100.0])
        gain, thr = best_split_for_feature(x, y, 3)
        # Only the middle split is allowed.
        assert thr == pytest.approx(2.5)

    def test_tree_memorises_with_depth(self, nonlinear_data):
        X, y = nonlinear_data
        tree = DecisionTreeRegressor(max_depth=16, min_samples_leaf=1).fit(X, y)
        assert r2_score(y, tree.predict(X)) > 0.97

    def test_max_depth_limits_leaves(self, nonlinear_data):
        X, y = nonlinear_data
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert shallow.n_leaves <= 4

    def test_min_samples_leaf(self, nonlinear_data):
        X, y = nonlinear_data
        tree = DecisionTreeRegressor(max_depth=20, min_samples_leaf=30).fit(X, y)
        # With >=30 samples/leaf, at most n/30 leaves.
        assert tree.n_leaves <= len(y) // 30 + 1

    def test_feature_importances_sum_to_one(self, nonlinear_data):
        X, y = nonlinear_data
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        imp = tree.feature_importances()
        assert imp.sum() == pytest.approx(1.0)

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(2).standard_normal((50, 2))
        tree = DecisionTreeRegressor().fit(X, np.full(50, 7.0))
        assert tree.n_leaves == 1
        assert tree.predict(X[:5]) == pytest.approx([7.0] * 5)


class TestForest:
    def test_beats_single_tree_out_of_sample(self, nonlinear_data):
        X, y = nonlinear_data
        train, test = np.arange(0, 200), np.arange(200, 300)
        tree = DecisionTreeRegressor(max_depth=20, random_state=0).fit(X[train], y[train])
        forest = RandomForestRegressor(n_estimators=25, random_state=0).fit(X[train], y[train])
        assert r2_score(y[test], forest.predict(X[test])) >= r2_score(
            y[test], tree.predict(X[test])
        ) - 0.02

    def test_deterministic_given_seed(self, nonlinear_data):
        X, y = nonlinear_data
        a = RandomForestRegressor(n_estimators=5, random_state=42).fit(X, y).predict(X[:10])
        b = RandomForestRegressor(n_estimators=5, random_state=42).fit(X, y).predict(X[:10])
        assert np.array_equal(a, b)

    def test_oob_predictions_present(self, nonlinear_data):
        X, y = nonlinear_data
        forest = RandomForestRegressor(n_estimators=20, random_state=0).fit(X, y)
        seen = ~np.isnan(forest.oob_prediction_)
        assert seen.mean() > 0.9
        assert r2_score(y[seen], forest.oob_prediction_[seen]) > 0.5

    def test_no_bootstrap_mode(self, nonlinear_data):
        X, y = nonlinear_data
        forest = RandomForestRegressor(n_estimators=3, bootstrap=False, random_state=0).fit(X, y)
        assert np.isnan(forest.oob_prediction_).all()


class TestMixture:
    def test_separates_two_regimes(self):
        rng = np.random.default_rng(3)
        n = 200
        x = rng.uniform(-1, 1, size=(n, 1))
        regime = (x[:, 0] > 0).astype(float)
        # Two very different linear laws on each side of 0.
        y = np.where(regime > 0, 5 + 10 * x[:, 0], -5 - 10 * x[:, 0])
        y = y + 0.05 * rng.standard_normal(n)
        mix = MixtureLinearRegression(n_components=2, random_state=0).fit(x, y)
        single = LinearRegression().fit(x, y)
        assert r2_score(y, mix.predict(x)) > r2_score(y, single.predict(x)) + 0.2

    def test_predict_std_positive(self):
        rng = np.random.default_rng(4)
        X = rng.standard_normal((100, 2))
        y = X[:, 0] + rng.standard_normal(100)
        mix = MixtureLinearRegression(n_components=2, random_state=0).fit(X, y)
        std = mix.predict_std(X)
        assert (std > 0).all()

    def test_single_component_is_linear(self, linear_data):
        X, y = linear_data
        mix = MixtureLinearRegression(n_components=1, random_state=0).fit(X, y)
        lin = LinearRegression().fit(X, y)
        assert np.allclose(mix.predict(X), lin.predict(X), atol=1e-3)


class TestConformal:
    def test_marginal_coverage(self):
        rng = np.random.default_rng(5)
        X = rng.standard_normal((600, 2))
        y = X[:, 0] * 2 + rng.standard_normal(600)
        model = ConformalRegressor(LinearRegression(), alpha=0.1, random_state=0)
        model.fit(X[:400], y[:400])
        _, lo, hi = model.predict_interval(X[400:])
        cov = coverage(y[400:], lo, hi)
        assert cov >= 0.85  # 1 - alpha with finite-sample slack

    def test_interval_contains_point(self, linear_data):
        X, y = linear_data
        model = ConformalRegressor(LinearRegression(), alpha=0.2).fit(X, y)
        point, lo, hi = model.predict_interval(X[:10])
        assert (lo <= point).all() and (point <= hi).all()

    def test_smaller_alpha_wider_intervals(self, linear_data):
        X, y = linear_data
        tight = ConformalRegressor(LinearRegression(), alpha=0.5, random_state=0).fit(X, y)
        wide = ConformalRegressor(LinearRegression(), alpha=0.05, random_state=0).fit(X, y)
        assert wide.radius_ >= tight.radius_
