"""Tests for vectorised bit packing/unpacking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CorruptStreamError
from repro.encoding.bitio import (
    pack_codes,
    read_uint_array,
    unpack_bits,
    windows_at_every_position,
    write_uint_array,
)


class TestPackCodes:
    def test_single_byte_code(self):
        payload, nbits = pack_codes(np.array([0b101]), np.array([3]))
        assert nbits == 3
        assert np.unpackbits(np.frombuffer(payload, np.uint8))[:3].tolist() == [1, 0, 1]

    def test_concatenation_msb_first(self):
        payload, nbits = pack_codes(np.array([0b1, 0b01]), np.array([1, 2]))
        assert nbits == 3
        bits = np.unpackbits(np.frombuffer(payload, np.uint8))[:3]
        assert bits.tolist() == [1, 0, 1]

    def test_zero_length_codes_skipped(self):
        payload, nbits = pack_codes(np.array([5, 3]), np.array([0, 2]))
        assert nbits == 2

    def test_empty(self):
        payload, nbits = pack_codes(np.array([], dtype=np.uint64), np.array([], dtype=np.int64))
        assert payload == b"" and nbits == 0

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([1, 2]), np.array([1]))


class TestUnpackBits:
    def test_roundtrip_with_pack(self):
        codes = np.array([0b1101, 0b10, 0b1], dtype=np.uint64)
        lengths = np.array([4, 2, 1])
        payload, nbits = pack_codes(codes, lengths)
        bits = unpack_bits(payload, nbits)
        assert bits.tolist() == [1, 1, 0, 1, 1, 0, 1]

    def test_truncated_payload_raises(self):
        with pytest.raises(CorruptStreamError):
            unpack_bits(b"\x00", 9)

    def test_zero_bits(self):
        assert unpack_bits(b"", 0).size == 0


class TestWindows:
    def test_every_position(self):
        bits = np.array([1, 0, 1, 1], dtype=np.uint8)
        win = windows_at_every_position(bits, 2)
        assert win.tolist() == [0b10, 0b01, 0b11, 0b10]  # last padded with 0

    def test_width_one(self):
        bits = np.array([1, 0, 1], dtype=np.uint8)
        assert windows_at_every_position(bits, 1).tolist() == [1, 0, 1]

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            windows_at_every_position(np.array([1], dtype=np.uint8), 0)


class TestFixedWidth:
    @given(
        st.lists(st.integers(min_value=0, max_value=2**20 - 1), min_size=0, max_size=200),
        st.integers(min_value=20, max_value=40),
    )
    @settings(max_examples=40, deadline=None)
    def test_uint_array_roundtrip(self, values, width):
        arr = np.asarray(values, dtype=np.uint64)
        payload = write_uint_array(arr, width)
        out = read_uint_array(payload, width, arr.size)
        assert np.array_equal(out, arr)

    def test_width_boundary_values(self):
        arr = np.array([0, 1, (1 << 13) - 1], dtype=np.uint64)
        out = read_uint_array(write_uint_array(arr, 13), 13, 3)
        assert np.array_equal(out, arr)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**16 - 1),
            st.integers(min_value=1, max_value=16),
        ),
        min_size=1,
        max_size=300,
    )
)
@settings(max_examples=40, deadline=None)
def test_pack_roundtrip_property(pairs):
    """Packing then re-reading each code at its offset recovers it."""
    codes = np.array([c & ((1 << l) - 1) for c, l in pairs], dtype=np.uint64)
    lengths = np.array([l for _, l in pairs], dtype=np.int64)
    payload, nbits = pack_codes(codes, lengths)
    bits = unpack_bits(payload, nbits)
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    for code, length, off in zip(codes, lengths, offsets):
        got = 0
        for j in range(length):
            got = (got << 1) | int(bits[off + j])
        assert got == int(code)
