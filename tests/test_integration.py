"""End-to-end integration tests across package boundaries."""

import os

import numpy as np
import pytest

from repro.bench import CheckpointStore, ExperimentRunner, TaskQueue, format_table2
from repro.compressors import make_compressor
from repro.core import SizeMetrics, options_hash
from repro.dataset import FolderLoader, HurricaneDataset, LocalCache, MemoryCache
from repro.predict import PredictionSession, get_scheme


class TestFigure4Flow:
    """The paper's Figure 4 walk, verbatim through the public API."""

    def test_full_inference_flow(self, smooth_field):
        from repro.core import PressioData

        comp = make_compressor("sz3", pressio__abs=1e-3)
        scm = get_scheme("tao2019")
        pred = scm.get_predictor(comp)
        pred.set_options({"predictors:state": None})  # no prior training
        invs = [
            "pressio:abs",
            "predictors:error_dependent",
            "predictors:error_agnostic",
        ]
        evaluator = scm.req_metrics_opts(comp, invs)
        evaluator.set_options(comp.get_options())
        data = PressioData(smooth_field, metadata={"data_id": "fig4"})
        results = evaluator.evaluate(data, changed=invs)
        value = pred.predict(results.to_dict())
        assert value > 0

    def test_invalidation_narrowing_drops_metrics(self):
        """A change-set touching only the bound excludes error-agnostic
        metrics from the evaluator the scheme constructs."""
        comp = make_compressor("sz3", pressio__abs=1e-3)
        scm = get_scheme("rahman2023")
        full = scm.req_metrics_opts(comp)
        narrowed = scm.req_metrics_opts(comp, ["pressio:abs"])
        assert len(narrowed.metrics) < len(full.metrics)
        # rahman's features are all error-agnostic: nothing is needed.
        assert len(narrowed.metrics) == 0


class TestFileBackedCampaign:
    """Materialised files → stacked loaders → bench → Table 2."""

    def test_pipeline_to_table(self, tmp_path):
        root = str(tmp_path / "fields")
        HurricaneDataset(
            shape=(12, 12, 8), timesteps=[0, 24], fields=["P", "U", "QRAIN", "CLOUD", "TC"]
        ).write_to_directory(root)
        dataset = MemoryCache(
            LocalCache(FolderLoader(root, "*.npy"), cache_dir=str(tmp_path / "spill"))
        )
        store = CheckpointStore(os.path.join(str(tmp_path), "ck.db"))
        runner = ExperimentRunner(
            dataset,
            compressors=("szx",),
            bounds=(1e-4, 1e-3),  # two bounds → each entry loads twice
            schemes=("khan2023",),
            store=store,
            queue=TaskQueue(2, "thread"),
            n_folds=2,
        )
        obs, stats, _ = runner.collect()
        assert stats.failed == 0
        assert len(obs) == 20
        text = format_table2(runner.table2(obs))
        assert "szx khan2023" in text
        # The caches actually absorbed repeat loads.
        metrics = dataset.get_metrics_results()
        assert metrics["memory_cache:hits"] + metrics["local_cache:hits"] > 0

    def test_checkpoint_shared_between_runner_instances(self, tmp_path):
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P", "W"])
        path = os.path.join(str(tmp_path), "shared.db")
        kwargs = dict(
            compressors=("szx",), bounds=(1e-4,), schemes=("tao2019",), n_folds=2
        )
        r1 = ExperimentRunner(ds, store=CheckpointStore(path), **kwargs)
        r1.collect()
        r1.store.close()
        executed = []
        r2 = ExperimentRunner(ds, store=CheckpointStore(path), **kwargs)

        def spy(task, worker):
            executed.append(task.key())
            return r2.run_task(task, worker)

        obs, _, _ = r2.collect(task_fn=spy)
        assert executed == []  # everything restored from the shared DB
        assert len(obs) == 2


class TestSessionAcrossCompressors:
    def test_one_session_per_codec_share_nothing(self, smooth_field):
        sessions = {
            name: PredictionSession.create(
                "tao2019", name, options={"pressio:abs": 1e-3}
            )
            for name in ("sz3", "zfp", "szx", "sperr")
        }
        estimates = {name: s.predict(smooth_field) for name, s in sessions.items()}
        assert all(v > 0 for v in estimates.values())
        # The estimated winner is a near-winner in reality (Tao's goal is
        # preserving the *ranking*; with sz3 and sperr within a few
        # percent of each other, picking either is a correct outcome).
        truths = {}
        for name in sessions:
            comp = make_compressor(name, pressio__abs=1e-3)
            size = SizeMetrics()
            comp.set_metrics([size])
            comp.compress(smooth_field)
            truths[name] = comp.get_metrics_results()["size:compression_ratio"]
        best_est = max(estimates, key=estimates.get)
        best_true_cr = max(truths.values())
        assert truths[best_est] >= 0.85 * best_true_cr


class TestDeterminismEndToEnd:
    def test_whole_campaign_hashable_and_repeatable(self):
        """Two independent runner instances produce identical payload
        values for the same keys (determinism underwrites checkpoints)."""

        def run_once():
            ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P", "QRAIN"])
            runner = ExperimentRunner(
                ds, compressors=("szx",), bounds=(1e-4,), schemes=("khan2023",)
            )
            obs, _, _ = runner.collect()
            return {
                (o["data_id"], o["bound"]): o["size:compression_ratio"] for o in obs
            }

        assert run_once() == run_once()

    def test_configuration_hash_covers_everything_relevant(self):
        a = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], seed=1)
        b = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], seed=2)
        assert options_hash(a.get_configuration()) != options_hash(b.get_configuration())
