"""Shard-merge edge cases, the wire codec, and the sbatch generator.

The merge invariants under test are the ones the zero-lost-tasks
guarantee rests on: duplicate keys resolve last-writer-wins with the
checksum re-verified, corrupt rows are quarantined per shard instead of
poisoning the campaign, re-merging the same shards is a no-op, and a
resume from a partial shard set recomputes exactly the missing work.
"""

import io
import json
import sqlite3

import pytest

from repro.bench.checkpoint import CheckpointStore, payload_checksum
from repro.bench.cluster import (
    MergeReport,
    discover_shards,
    generate_sbatch,
    merge_shards,
    merged_run_stats,
    shard_path,
)
from repro.bench.cluster.wire import (
    MAX_FRAME,
    ConnectionClosed,
    FrameError,
    encode_frame,
    recv_frame,
)


def _make_shard(path, rows, failures=(), stats=None):
    """Build one shard db: ``rows`` is ``{key: payload}``."""
    with CheckpointStore(path) as store:
        for key, payload in rows.items():
            store.put(key, payload)
        for key, error in failures:
            store.record_failure(key, error, status=1)
        if stats is not None:
            store.set_meta("last_run_stats", json.dumps(stats))
        store.flush()
    return path


def _set_created_at(path, key, created_at):
    db = sqlite3.connect(path)
    db.execute("UPDATE results SET created_at=? WHERE key=?", (created_at, key))
    db.commit()
    db.close()


def _corrupt_payload(path, key):
    """Damage a row's payload bytes without touching its checksum."""
    db = sqlite3.connect(path)
    db.execute("UPDATE results SET payload=? WHERE key=?", ('{"tampered": 1}', key))
    db.commit()
    db.close()


class TestWireCodec:
    def test_roundtrip(self):
        msg = {"op": "run", "tasks": [1, 2, 3], "blob": b"\x00\xff" * 64}
        frame = encode_frame(msg)
        obj, nbytes = recv_frame(io.BytesIO(frame))
        assert obj == msg
        assert nbytes == len(frame)

    def test_eof_at_boundary_is_connection_closed(self):
        with pytest.raises(ConnectionClosed):
            recv_frame(io.BytesIO(b""))

    def test_truncated_frame_is_frame_error(self):
        frame = encode_frame({"op": "x"})
        with pytest.raises(FrameError):
            recv_frame(io.BytesIO(frame[:-1]))

    def test_corrupt_payload_fails_checksum(self):
        frame = bytearray(encode_frame({"op": "x", "n": 12345}))
        frame[-1] ^= 0xFF
        with pytest.raises(FrameError, match="checksum"):
            recv_frame(io.BytesIO(bytes(frame)))

    def test_oversized_announcement_rejected(self):
        header = encode_frame({})[:12]
        forged = (MAX_FRAME + 1).to_bytes(4, "big") + header[4:]
        with pytest.raises(FrameError, match="cap"):
            recv_frame(io.BytesIO(forged))


class TestShardDiscovery:
    def test_canonical_names_only_rank_ordered(self, tmp_path):
        (tmp_path / "shard-00002.db").touch()
        (tmp_path / "shard-00000.db").touch()
        (tmp_path / "shard-00002.db-wal").touch()
        (tmp_path / "notes.txt").touch()
        found = discover_shards(str(tmp_path))
        assert [rank for rank, _ in found] == [0, 2]
        assert all(path.endswith(".db") for _, path in found)

    def test_missing_directory_is_empty(self, tmp_path):
        assert discover_shards(str(tmp_path / "nope")) == []

    def test_shard_path_is_stable(self, tmp_path):
        p = shard_path(str(tmp_path), 3)
        assert p.endswith("shard-00003.db")
        assert discover_shards(str(tmp_path)) == []  # not created by naming


class TestMergeShards:
    def test_disjoint_shards_all_inserted(self, tmp_path):
        s1 = _make_shard(shard_path(str(tmp_path), 1), {"a": {"v": 1}})
        s2 = _make_shard(shard_path(str(tmp_path), 2), {"b": {"v": 2}})
        dest = CheckpointStore(":memory:")
        report = merge_shards(dest, [(1, s1), (2, s2)])
        assert report.shards == 2
        assert report.inserted == 2 and report.replaced == 0
        assert report.quarantined_total == 0
        assert sorted(dest.keys()) == ["a", "b"]
        dest.close()

    def test_duplicate_key_last_writer_wins(self, tmp_path):
        # The requeue-after-unacked-flush scenario: the same task ran on
        # two ranks; the newer row must win regardless of merge order.
        s1 = _make_shard(shard_path(str(tmp_path), 1), {"k": {"v": "old"}})
        s2 = _make_shard(shard_path(str(tmp_path), 2), {"k": {"v": "new"}})
        _set_created_at(s1, "k", 100.0)
        _set_created_at(s2, "k", 200.0)
        for order in ([(1, s1), (2, s2)], [(2, s2), (1, s1)]):
            dest = CheckpointStore(":memory:")
            report = merge_shards(dest, order)
            assert report.merged >= 1
            assert dest.get("k")["v"] == "new"
            dest.close()

    def test_equal_timestamp_tie_later_shard_wins(self, tmp_path):
        s1 = _make_shard(shard_path(str(tmp_path), 1), {"k": {"v": 1}})
        s2 = _make_shard(shard_path(str(tmp_path), 2), {"k": {"v": 2}})
        _set_created_at(s1, "k", 50.0)
        _set_created_at(s2, "k", 50.0)
        dest = CheckpointStore(":memory:")
        merge_shards(dest, [(1, s1), (2, s2)])
        assert dest.get("k")["v"] == 2
        dest.close()

    def test_corrupt_row_quarantined_not_merged(self, tmp_path):
        s1 = _make_shard(
            shard_path(str(tmp_path), 1), {"good": {"v": 1}, "bad": {"v": 2}}
        )
        _corrupt_payload(s1, "bad")
        dest = CheckpointStore(":memory:")
        report = merge_shards(dest, [(1, s1)])
        assert report.quarantined_total == 1
        assert list(report.quarantined.values()) == [["bad"]]
        assert dest.keys() == ["good"]
        # The merged row still passes the destination's own audit.
        assert dest.verify() == []
        dest.close()

    def test_merge_is_idempotent(self, tmp_path):
        shards = [
            (1, _make_shard(shard_path(str(tmp_path), 1), {"a": {"v": 1}})),
            (2, _make_shard(shard_path(str(tmp_path), 2), {"b": {"v": 2}})),
        ]
        dest = CheckpointStore(":memory:")
        first = merge_shards(dest, shards)
        assert first.inserted == 2
        again = merge_shards(dest, shards)
        assert again.inserted == 0 and again.replaced == 0
        assert again.skipped == 2
        assert sorted(dest.keys()) == ["a", "b"]
        dest.close()

    def test_resume_from_partial_shards_after_rank_loss(self, tmp_path):
        # Rank 2 died mid-campaign: only its partial shard survives.  The
        # merge must fold what exists; pending() over the merged store
        # then names exactly the lost work for the resumed campaign.
        all_keys = {f"k{i}" for i in range(6)}
        s1 = _make_shard(
            shard_path(str(tmp_path), 1), {k: {"v": k} for k in ["k0", "k1", "k2"]}
        )
        s2 = _make_shard(shard_path(str(tmp_path), 2), {"k3": {"v": "k3"}})
        dest = CheckpointStore(":memory:")
        merge_shards(dest, discover_shards(str(tmp_path)))
        missing = set(dest.pending(all_keys))
        assert missing == {"k4", "k5"}
        # The "resumed" campaign recomputes only the missing keys into a
        # fresh shard; a second merge completes the set.
        s3 = _make_shard(
            shard_path(str(tmp_path), 3), {k: {"v": k} for k in missing}
        )
        merge_shards(dest, discover_shards(str(tmp_path)))
        assert set(dest.keys()) == all_keys
        assert dest.verify() == []
        dest.close()

    def test_failure_import_is_success_aware(self, tmp_path):
        # key "flaky" failed on rank 1 but succeeded on rank 2: the
        # merged ledger must not show it.  "poison" failed everywhere:
        # it must surface, labelled with its originating rank.
        s1 = _make_shard(
            shard_path(str(tmp_path), 1),
            {},
            failures=[("flaky", "IOError: transient"), ("poison", "ValueError: bad")],
        )
        s2 = _make_shard(shard_path(str(tmp_path), 2), {"flaky": {"v": 1}})
        dest = CheckpointStore(":memory:")
        report = merge_shards(dest, [(1, s1), (2, s2)])
        assert report.failures_imported == 1
        ledger = dest.failures()
        assert [e["key"] for e in ledger] == ["poison"]
        assert ledger[0]["origin"] == "rank1"
        dest.close()

    def test_prior_failure_cleared_when_a_shard_succeeded(self, tmp_path):
        # The destination store already holds a failure from a previous
        # partial campaign; a shard that finally succeeded clears it.
        dest = CheckpointStore(":memory:")
        dest.record_failure("k", "IOError: was down", status=1)
        s1 = _make_shard(shard_path(str(tmp_path), 1), {"k": {"v": 1}})
        merge_shards(dest, [(1, s1)])
        assert dest.failures() == []
        dest.close()

    def test_empty_report_summary_reads_sanely(self):
        report = MergeReport()
        assert "0 shard(s)" in report.summary()
        assert report.merged == 0 and report.quarantined_total == 0


class TestMergedRunStats:
    def test_numeric_fields_sum_with_per_rank_breakdown(self, tmp_path):
        s1 = _make_shard(
            shard_path(str(tmp_path), 1), {},
            stats={"completed": 3, "execute_seconds": 1.5, "engine": "cluster"},
        )
        s2 = _make_shard(
            shard_path(str(tmp_path), 2), {},
            stats={"completed": 4, "execute_seconds": 0.5},
        )
        merged = merged_run_stats(discover_shards(str(tmp_path)))
        assert merged["engine"] == "cluster"
        assert merged["ranks"] == 2
        assert merged["completed"] == 7
        assert merged["execute_seconds"] == pytest.approx(2.0)
        assert set(merged["per_rank"]) == {"rank1", "rank2"}

    def test_no_stats_anywhere_is_none(self, tmp_path):
        _make_shard(shard_path(str(tmp_path), 1), {"a": {"v": 1}})
        assert merged_run_stats(discover_shards(str(tmp_path))) is None


class TestRowChecksumReverify:
    def test_unchecksummed_garbage_row_quarantined(self, tmp_path):
        # Legacy rows (empty checksum) are validated as JSON at least.
        s1 = _make_shard(shard_path(str(tmp_path), 1), {"k": {"v": 1}})
        db = sqlite3.connect(s1)
        db.execute("UPDATE results SET payload='not json', checksum='' WHERE key='k'")
        db.commit()
        db.close()
        dest = CheckpointStore(":memory:")
        report = merge_shards(dest, [(1, s1)])
        assert report.quarantined_total == 1
        assert dest.keys() == []
        dest.close()

    def test_payload_checksum_matches_store_rows(self, tmp_path):
        s1 = _make_shard(shard_path(str(tmp_path), 1), {"k": {"v": 1}})
        with CheckpointStore(s1) as shard:
            rows = shard.dump_rows()
        (row,) = rows
        assert payload_checksum(row[5]) == row[7]


class TestSbatchGenerator:
    def test_golden_script(self, tmp_path):
        import pathlib

        script = generate_sbatch(
            "predict-bench collect --checkpoint bench.db",
            job_name="cluster-demo",
            ntasks=4,
            nodes=2,
            time_limit="02:30:00",
            partition="batch",
            account="csc999",
            shard_dir="/scratch/shards",
            coord_port=7621,
            extra_directives=["--mem=16G"],
        )
        golden = pathlib.Path(__file__).parent / "golden" / "sbatch_cluster.sh"
        assert script == golden.read_text(encoding="utf-8")

    def test_rank_and_world_plumbing_present(self):
        script = generate_sbatch("predict-bench collect", ntasks=3)
        assert 'export REPRO_CLUSTER_RANK="${SLURM_PROCID}"' in script
        assert 'export REPRO_CLUSTER_WORLD="${SLURM_NTASKS}"' in script
        assert "--engine cluster" in script
        assert '--shard-dir "${SHARD_DIR}"' in script

    def test_single_rank_rejected(self):
        with pytest.raises(ValueError, match="ntasks"):
            generate_sbatch("predict-bench collect", ntasks=1)

    def test_single_quotes_rejected(self):
        with pytest.raises(ValueError, match="single quote"):
            generate_sbatch("predict-bench collect --fields 'U'")
