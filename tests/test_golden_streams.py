"""Golden-stream bit-exactness: the kernel rewrite contract.

The fixtures under ``tests/golden/`` were generated from the original
interpreted kernel implementations *before* the vectorization rewrite.
These tests pin three properties for every compressor variant and every
LZ77 payload shape:

1. **byte-identical encode** — the current encoders reproduce the frozen
   streams exactly (so old checkpoints hash-match and the Jin/Khan
   models see the same stage sizes);
2. **exact decode** — the frozen bytes decode to the same values the
   current pipeline produces, within the promised error bound;
3. **reference equivalence** — the retired byte-at-a-time LZ77 loops
   (kept as ``*_ref``) and the vectorized kernels agree on both
   directions, for both well-formed and corrupt streams.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.compressors  # noqa: F401  (registers the plugins)
from repro.core.compressor import compressor_registry
from repro.core.errors import CorruptStreamError
from repro.encoding import huffman
from repro.encoding.lz import (
    _lz77_compress,
    _lz77_compress_ref,
    _lz77_decompress,
    _lz77_decompress_ref,
    lossless_compress,
    lossless_decompress,
)
from tests import golden_kernels as gk


def _fixture(name: str) -> bytes:
    path = os.path.join(gk.GOLDEN_DIR, name)
    with open(path, "rb") as fh:
        return fh.read()


@pytest.mark.parametrize(
    "name,comp_id,options,kind",
    gk.GOLDEN_COMPRESSOR_VARIANTS,
    ids=[v[0] for v in gk.GOLDEN_COMPRESSOR_VARIANTS],
)
class TestGoldenCompressorStreams:
    def test_encode_is_byte_identical(self, name, comp_id, options, kind):
        assert gk.compressor_stream(name) == _fixture(f"comp_{name}.bin")

    def test_frozen_stream_decodes_within_bound(self, name, comp_id, options, kind):
        field = gk.golden_input(kind)
        comp = compressor_registry.create(comp_id)
        comp.set_options(options)
        decoded = comp.decompress_impl(
            _fixture(f"comp_{name}.bin"), field.dtype, field.shape
        )
        assert decoded.shape == field.shape
        if options.get("zfp:mode") == "rate":
            return  # fixed-rate mode bounds bits, not error
        bound = float(options["pressio:abs"])
        assert float(np.abs(decoded - field).max()) <= bound + 1e-12
        # Decode must also be deterministic against a fresh encode.
        fresh = comp.decompress_impl(
            comp.compress_impl(field), field.dtype, field.shape
        )
        assert np.array_equal(decoded, fresh)


@pytest.mark.parametrize("name", sorted(gk.golden_lz_payloads()))
class TestGoldenLZ77Streams:
    def test_token_stream_byte_identical(self, name):
        payload = gk.golden_lz_payloads()[name]
        frozen = _fixture(f"lz77_tokens_{name}.bin")
        assert _lz77_compress(payload) == frozen
        assert _lz77_compress_ref(payload) == frozen

    def test_wrapped_stream_byte_identical(self, name):
        payload = gk.golden_lz_payloads()[name]
        assert lossless_compress(payload, backend="lz77") == _fixture(
            f"lz77_stream_{name}.bin"
        )

    def test_both_decoders_roundtrip_frozen_tokens(self, name):
        payload = gk.golden_lz_payloads()[name]
        frozen = _fixture(f"lz77_tokens_{name}.bin")
        assert _lz77_decompress(frozen, len(payload)) == payload
        assert _lz77_decompress_ref(frozen, len(payload)) == payload
        assert lossless_decompress(_fixture(f"lz77_stream_{name}.bin")) == payload

    def test_decoders_agree_on_corrupt_streams(self, name):
        """Truncations and bit flips produce the same error (or output)."""
        payload = gk.golden_lz_payloads()[name]
        frozen = _fixture(f"lz77_tokens_{name}.bin")
        if len(frozen) < 4:
            pytest.skip("no meaningful corruption for degenerate stream")
        rng = np.random.default_rng(len(frozen))
        cases = [frozen[: int(rng.integers(1, len(frozen)))] for _ in range(10)]
        for _ in range(10):
            flipped = bytearray(frozen)
            flipped[int(rng.integers(0, len(flipped)))] ^= 1 << int(rng.integers(0, 8))
            cases.append(bytes(flipped))
        for stream in cases:
            res = []
            for decoder in (_lz77_decompress_ref, _lz77_decompress):
                try:
                    res.append(("ok", decoder(stream, len(payload))))
                except CorruptStreamError as exc:
                    res.append(("err", str(exc)))
            assert res[0] == res[1]


class TestGoldenHuffman:
    def test_stream_byte_identical(self):
        assert gk.huffman_stream() == _fixture("huffman_stream.bin")

    def test_frozen_stream_decodes(self):
        symbols = gk.golden_huffman_symbols()
        assert np.array_equal(huffman.decode(_fixture("huffman_stream.bin")), symbols)

    def test_decode_tables_digest(self):
        assert gk.huffman_tables_digest() == _fixture("huffman_tables.sha256")
