"""Tests for the GP and MLP regressors and the legacy schemes built on
them (Lu 2018, Qin 2020)."""

import numpy as np
import pytest

from repro.compressors import make_compressor
from repro.core import SizeMetrics, UnsupportedError
from repro.mlkit import (
    GaussianProcessRegressor,
    LinearRegression,
    MLPRegressor,
    median_heuristic,
    r2_score,
    rbf_kernel,
)
from repro.predict import get_scheme


@pytest.fixture(scope="module")
def wavy_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(-2, 2, size=(180, 2))
    y = np.sin(2 * X[:, 0]) + 0.5 * X[:, 1] ** 2 + 0.02 * rng.standard_normal(180)
    return X, y


class TestGaussianProcess:
    def test_kernel_properties(self):
        rng = np.random.default_rng(1)
        A = rng.standard_normal((10, 3))
        K = rbf_kernel(A, A, 1.0)
        assert np.allclose(np.diag(K), 1.0)
        assert np.allclose(K, K.T)
        assert (K >= 0).all() and (K <= 1).all()

    def test_median_heuristic_positive(self):
        rng = np.random.default_rng(2)
        assert median_heuristic(rng.standard_normal((50, 4))) > 0
        assert median_heuristic(np.zeros((1, 3))) == 1.0

    def test_interpolates_training_points(self, wavy_data):
        X, y = wavy_data
        gp = GaussianProcessRegressor(noise=1e-6).fit(X[:60], y[:60])
        assert r2_score(y[:60], gp.predict(X[:60])) > 0.999

    def test_beats_linear_on_nonlinear(self, wavy_data):
        X, y = wavy_data
        train, test = slice(0, 120), slice(120, None)
        gp = GaussianProcessRegressor().fit(X[train], y[train])
        lin = LinearRegression().fit(X[train], y[train])
        assert r2_score(y[test], gp.predict(X[test])) > r2_score(
            y[test], lin.predict(X[test])
        )

    def test_predictive_std_grows_away_from_data(self, wavy_data):
        X, y = wavy_data
        gp = GaussianProcessRegressor().fit(X[:100], y[:100])
        near = gp.predict_std(X[:5])
        far = gp.predict_std(np.full((5, 2), 50.0))
        assert far.mean() > near.mean()

    def test_log_marginal_likelihood_finite(self, wavy_data):
        X, y = wavy_data
        gp = GaussianProcessRegressor().fit(X[:50], y[:50])
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_explicit_length_scale(self, wavy_data):
        X, y = wavy_data
        gp = GaussianProcessRegressor(length_scale=0.7).fit(X[:50], y[:50])
        assert gp.length_scale_ == 0.7


class TestMLP:
    def test_fits_nonlinear(self, wavy_data):
        X, y = wavy_data
        train, test = slice(0, 120), slice(120, None)
        mlp = MLPRegressor(epochs=500, random_state=0).fit(X[train], y[train])
        assert r2_score(y[test], mlp.predict(X[test])) > 0.9

    def test_deterministic_given_seed(self, wavy_data):
        X, y = wavy_data
        a = MLPRegressor(epochs=50, random_state=7).fit(X, y).predict(X[:5])
        b = MLPRegressor(epochs=50, random_state=7).fit(X, y).predict(X[:5])
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, wavy_data):
        X, y = wavy_data
        a = MLPRegressor(epochs=50, random_state=1).fit(X, y).predict(X[:5])
        b = MLPRegressor(epochs=50, random_state=2).fit(X, y).predict(X[:5])
        assert not np.array_equal(a, b)

    def test_constant_target(self):
        X = np.random.default_rng(3).standard_normal((40, 2))
        mlp = MLPRegressor(epochs=50).fit(X, np.full(40, 5.0))
        assert mlp.predict(X[:4]) == pytest.approx([5.0] * 4, abs=0.1)

    def test_hidden_architecture_param(self, wavy_data):
        X, y = wavy_data
        mlp = MLPRegressor(hidden=(8,), epochs=100).fit(X, y)
        assert len(mlp.weights_) == 2  # one hidden + output


class TestLegacySchemes:
    @pytest.fixture(scope="class")
    def training(self, small_hurricane):
        rows_by_scheme = {}
        for name in ("lu2018", "qin2020"):
            scheme = get_scheme(name)
            rows, targets = [], []
            for i in range(len(small_hurricane)):
                data = small_hurricane.load_data(i)
                arr = data.array
                eb = 1e-4 * float(arr.max() - arr.min() or 1.0)
                comp = make_compressor("sz3", pressio__abs=eb)
                res = scheme.req_metrics_opts(comp).evaluate(data).to_dict()
                res.update(scheme.config_features(comp))
                rows.append(res)
                size = SizeMetrics()
                comp.set_metrics([size])
                comp.compress(data)
                targets.append(comp.get_metrics_results()["size:compression_ratio"])
            rows_by_scheme[name] = (rows, np.asarray(targets))
        return rows_by_scheme

    @pytest.mark.parametrize("name", ["lu2018", "qin2020"])
    def test_fit_predict_reasonable(self, name, training):
        from repro.mlkit import medape

        rows, y = training[name]
        scheme = get_scheme(name)
        comp = make_compressor("sz3", pressio__abs=1e-3)
        predictor = scheme.get_predictor(comp)
        split = len(rows) * 2 // 3
        predictor.fit(rows[:split], y[:split])
        preds = predictor.predict_many(rows[split:])
        assert medape(y[split:], preds) < 120.0

    @pytest.mark.parametrize("name", ["lu2018", "qin2020"])
    def test_unsupported_compressor(self, name):
        comp = make_compressor("szx", pressio__abs=1e-3)
        with pytest.raises(UnsupportedError):
            get_scheme(name).get_predictor(comp)

    def test_zfp_branch_uses_zfp_probe(self):
        comp = make_compressor("zfp", pressio__abs=1e-3)
        metrics = get_scheme("lu2018").make_metrics(comp)
        assert metrics[0].id == "zfpprobe"
