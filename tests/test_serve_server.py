"""End-to-end serving: campaign → publish → server → client predictions.

The acceptance demo for the online service: a trained model queried over
the wire returns exactly what the deserialized predictor returns when
called directly; a burst of K concurrent requests coalesces into fewer
than K vectorised predict calls; overload sheds with the documented
status instead of hanging.
"""

from __future__ import annotations

import json
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.bench.runner import ExperimentRunner
from repro.dataset import HurricaneDataset
from repro.predict.scheme import get_scheme
from repro.serve import (
    DriftConfig,
    ModelRegistry,
    PredictionClient,
    PredictionServer,
    ServerError,
    ServerThread,
    registry_key,
    scheme_params,
)

# Fires fast: tiny calibration + window, two breaching evaluations.
FAST_DRIFT = DriftConfig(
    window=8, min_observations=4, calibration=4, hysteresis=2
)


def force_drift(client, key, row, cap=60):
    """Feed skewed ground truth until the key's monitor fires."""
    resp = client.predict(key, results=row)
    for _ in range(cap):
        snap = client.observe(
            key, resp["prediction"], resp["prediction"] * 3.0,
            version=resp["version"],
        )
        if snap["fired"]:
            return snap
    raise AssertionError("drift monitor never fired")

BOUND = 1e-3


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One tiny collection campaign, published into a fresh registry."""
    dataset = HurricaneDataset(
        shape=(16, 16, 8), timesteps=[0, 24], fields=["P", "U", "QRAIN", "CLOUD"]
    )
    scheme = get_scheme("rahman2023", n_estimators=5, max_depth=4, augment_factor=1.0)
    runner = ExperimentRunner(
        dataset,
        compressors=["sz3"],
        bounds=[BOUND],
        schemes=[scheme, "khan2023"],
        n_folds=2,
    )
    observations = runner.collect().observations
    registry = ModelRegistry(str(tmp_path_factory.mktemp("registry")))
    receipts = runner.publish(registry, observations)
    runner.close()
    key = registry_key(
        scheme.id,
        "sz3",
        {"pressio:abs": BOUND, "pressio:abs_is_relative": True},
        scheme_params(scheme),
    )
    rows = [
        dict(o)
        for o in observations
        if o.get("scheme:rahman2023:supported") and o.get("size:compression_ratio")
    ]
    return SimpleNamespace(
        registry=registry, receipts=receipts, key=key, rows=rows, scheme=scheme
    )


def serve(campaign, **kwargs):
    return ServerThread(PredictionServer(campaign.registry, **kwargs))


def burst(address, key, rows, n, **client_kwargs):
    """Fire *n* predicts from *n* connections released simultaneously."""
    out: list = [None] * n
    barrier = threading.Barrier(n)

    def worker(i):
        with PredictionClient(*address, **client_kwargs) as client:
            barrier.wait()
            try:
                out[i] = client.predict(key, results=rows[i % len(rows)])
            except ServerError as exc:
                out[i] = exc

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert all(r is not None for r in out), "a request hung without a response"
    return out


class TestPublishHook:
    def test_publish_covers_every_combination(self, campaign):
        assert len(campaign.receipts) == 2  # (rahman2023 + khan2023) x sz3 x 1 bound
        assert {r.manifest["scheme"] for r in campaign.receipts} == {
            "rahman2023",
            "khan2023",
        }
        assert campaign.key in {r.key for r in campaign.receipts}

    def test_receipts_carry_campaign_meta(self, campaign):
        for receipt in campaign.receipts:
            assert receipt.manifest["meta"]["n_observations"] >= 2
            assert receipt.manifest["meta"]["relative_bounds"] is True


class TestEndToEnd:
    def test_served_prediction_matches_direct_predictor(self, campaign):
        row = campaign.rows[0]
        direct = campaign.registry.load(campaign.key)
        want = float(direct.predictor.predict(row))
        with serve(campaign) as thread:
            with PredictionClient(*thread.address) as client:
                response = client.predict(campaign.key, results=row)
        assert response["status"] == "ok"
        assert response["prediction"] == want
        assert response["target"] == "size:compression_ratio"
        assert response["version"] == direct.version
        assert set(response["timings"]) == {
            "queue_wait_ms",
            "featurize_ms",
            "predict_ms",
        }

    def test_raw_field_is_featurized_server_side(self, campaign):
        # An unseen field: the server must run the same featurization the
        # bench used offline, so its answer equals the direct pipeline's.
        rng = np.random.default_rng(7)
        arr = rng.standard_normal((16, 16, 8)).astype(np.float32)
        from repro.core.data import as_data

        model = campaign.registry.load(campaign.key)
        row = dict(model.scheme.req_metrics_opts(model.compressor).evaluate(as_data(arr)))
        for k, v in model.scheme.config_features(model.compressor).items():
            row.setdefault(k, v)
        want = float(model.predictor.predict(row))
        with serve(campaign) as thread:
            with PredictionClient(*thread.address) as client:
                response = client.predict(campaign.key, data=arr)
        assert response["prediction"] == want

    def test_ping_models_and_stats_ops(self, campaign):
        with serve(campaign) as thread:
            with PredictionClient(*thread.address) as client:
                assert client.ping()
                models = client.models()
                assert {m["manifest"]["scheme"] for m in models} == {
                    "rahman2023",
                    "khan2023",
                }
                client.predict(campaign.key, results=campaign.rows[0])
                stats = client.stats()
        assert stats["completed"] == 1
        assert stats["predict_calls"] == 1
        assert stats["model_loads"] == 1
        assert stats["latency_p99_ms"] > 0
        for stage in ("queue_wait_seconds", "featurize_seconds", "predict_seconds"):
            assert stats[stage] >= 0

    def test_shutdown_op_stops_server(self, campaign):
        thread = serve(campaign).start()
        with PredictionClient(*thread.address) as client:
            client.shutdown()
        thread._thread.join(5)
        assert not thread._thread.is_alive()


class TestMicroBatching:
    def test_burst_coalesces_into_fewer_predict_calls(self, campaign):
        k = 12
        with serve(campaign, batch_window_ms=250, max_batch=64) as thread:
            results = burst(thread.address, campaign.key, campaign.rows, k)
            with PredictionClient(*thread.address) as client:
                stats = client.stats()
        assert all(isinstance(r, dict) and r["status"] == "ok" for r in results)
        assert stats["completed"] == k
        assert stats["predict_calls"] < k, "burst did not batch"
        assert stats["mean_batch_size"] > 1.0
        assert stats["batched_rows"] == k

    def test_batch_answers_agree_with_direct(self, campaign):
        direct = campaign.registry.load(campaign.key)
        with serve(campaign, batch_window_ms=100, max_batch=64) as thread:
            results = burst(thread.address, campaign.key, campaign.rows, 8)
        for i, response in enumerate(results):
            row = campaign.rows[i % len(campaign.rows)]
            assert response["prediction"] == float(direct.predictor.predict(row))

    def test_max_batch_flushes_before_window(self, campaign):
        # window far beyond test patience: only the size trigger can
        # flush, so a full batch completing proves it fires.
        k = 4
        with serve(campaign, batch_window_ms=60_000, max_batch=k) as thread:
            results = burst(thread.address, campaign.key, campaign.rows, k)
        assert all(r["status"] == "ok" for r in results)
        assert {r["batch_size"] for r in results} == {k}

    def test_cold_load_is_single_flight(self, campaign):
        # window 0: every request flushes its own batch, so concurrent
        # batches race the cold load — the blob must deserialise once.
        k = 8
        with serve(campaign, batch_window_ms=0) as thread:
            results = burst(thread.address, campaign.key, campaign.rows, k)
            with PredictionClient(*thread.address) as client:
                stats = client.stats()
        assert all(r["status"] == "ok" for r in results)
        assert stats["model_loads"] == 1, "cold load was not single-flight"
        assert stats["cache_misses"] == 1


class TestAdmissionControl:
    def test_overload_sheds_with_documented_status(self, campaign):
        # overload_retries=0 turns client retries off: the raw shed
        # must surface with the documented status.
        k = 8
        with serve(
            campaign, batch_window_ms=300, max_in_flight=2, max_queue_depth=1
        ) as thread:
            results = burst(
                thread.address, campaign.key, campaign.rows, k, overload_retries=0
            )
            with PredictionClient(*thread.address) as client:
                stats = client.stats()
        ok = [r for r in results if isinstance(r, dict)]
        shed = [r for r in results if isinstance(r, ServerError)]
        assert ok, "every request was shed"
        assert shed, "admission limits admitted the whole burst"
        for exc in shed:
            assert exc.server_status == "overloaded"
            assert "retry with backoff" in str(exc)
        assert stats["shed"] == len(shed)
        assert stats["completed"] == len(ok)

    def test_default_client_retries_through_overload(self, campaign):
        # The same burst that sheds above completes without a single
        # client-visible error when the default retry-with-backoff is
        # left on — the server's "overloaded" answer is advice the
        # client now follows.
        k = 8
        with serve(
            campaign, batch_window_ms=50, max_in_flight=2, max_queue_depth=1
        ) as thread:
            results = burst(
                thread.address,
                campaign.key,
                campaign.rows,
                k,
                overload_retries=12,
                retry_base_delay=0.02,
                retry_seed=7,
            )
            with PredictionClient(*thread.address) as client:
                stats = client.stats()
        errors = [r for r in results if isinstance(r, ServerError)]
        assert not errors, f"retrying clients still saw errors: {errors[:2]}"
        assert all(r["status"] == "ok" for r in results)
        # the server really did shed — the retries are what hid it
        assert stats["shed"] > 0

    def test_backoff_schedule_is_bounded_and_deterministic(self):
        import random

        from repro.serve import overload_backoff

        rng = random.Random(3)
        delays = [
            overload_backoff(
                a, base_delay=0.05, max_delay=0.4, jitter=0.5, rng=rng
            )
            for a in range(1, 8)
        ]
        # jitter keeps every delay within +/-50% of the raw exponential
        raw = [min(0.05 * 2.0 ** (a - 1), 0.4) for a in range(1, 8)]
        for got, want in zip(delays, raw):
            assert 0.5 * want <= got <= 1.5 * want
        assert max(delays) <= 0.4 * 1.5
        # same seed -> same schedule
        rng2 = random.Random(3)
        again = [
            overload_backoff(
                a, base_delay=0.05, max_delay=0.4, jitter=0.5, rng=rng2
            )
            for a in range(1, 8)
        ]
        assert delays == again

    def test_unknown_key_is_not_found(self, campaign):
        with serve(campaign) as thread:
            with PredictionClient(*thread.address) as client:
                with pytest.raises(ServerError) as err:
                    client.predict("f" * 16, results=campaign.rows[0])
        assert err.value.server_status == "not_found"

    def test_malformed_requests_are_bad_request(self, campaign):
        with serve(campaign) as thread:
            with PredictionClient(*thread.address) as client:
                no_key = client.request({"op": "predict", "results": {}})
                assert no_key["status"] == "bad_request"
                both = client.request(
                    {
                        "op": "predict",
                        "key": campaign.key,
                        "results": {},
                        "data": {"x": 1},
                    }
                )
                assert both["status"] == "bad_request"
                unknown = client.request({"op": "frobnicate"})
                assert unknown["status"] == "bad_request"
                client._sock.sendall(b"this is not json\n")
                garbage = json.loads(client._rfile.readline())
                assert garbage["status"] == "bad_request"

    def test_request_ids_echo_back(self, campaign):
        with serve(campaign) as thread:
            with PredictionClient(*thread.address) as client:
                response = client.request({"op": "ping", "id": "req-42"})
        assert response["id"] == "req-42"


class TestRefreshOp:
    """Registry invalidation push: a re-publish flips live servers."""

    def _copied_registry(self, campaign, tmp_path):
        import shutil

        root = tmp_path / "registry-copy"
        shutil.copytree(campaign.registry.root, root)
        return ModelRegistry(str(root))

    def test_refresh_flips_live_server_to_republished_version(
        self, campaign, tmp_path
    ):
        registry = self._copied_registry(campaign, tmp_path)
        model = registry.load(campaign.key)
        row = campaign.rows[0]
        with ServerThread(PredictionServer(registry)) as thread:
            with PredictionClient(*thread.address) as client:
                first = client.predict(campaign.key, results=row)
                assert first["version"] == model.version
                receipt = registry.publish(
                    model.scheme,
                    model.manifest["compressor"],
                    model.manifest["compressor_options"],
                    model.predictor,
                )
                assert receipt.key == campaign.key
                assert receipt.version != model.version
                # The warm cache still serves the old generation...
                stale = client.predict(campaign.key, results=row)
                assert stale["version"] == model.version
                # ...until a refresh re-reads LATEST and evicts it.
                refreshed = client.refresh()
                assert refreshed[campaign.key] == receipt.version
                fresh = client.predict(campaign.key, results=row)
                assert fresh["version"] == receipt.version
                assert client.stats()["refreshes"] == 1

    def test_refresh_without_republish_keeps_warm_model(self, campaign):
        with serve(campaign) as thread:
            with PredictionClient(*thread.address) as client:
                before = client.predict(campaign.key, results=campaign.rows[0])
                response = client.request({"op": "refresh", "key": campaign.key})
                assert response["status"] == "ok"
                assert response["evicted"] == 0
                assert response["refreshed"] == {campaign.key: before["version"]}
                # Still a cache hit: the valid warm model survived.
                after = client.predict(campaign.key, results=campaign.rows[0])
                assert after["version"] == before["version"]
                stats = client.stats()
                assert stats["cache_misses"] == 1

    def test_refresh_rejects_empty_key(self, campaign):
        with serve(campaign) as thread:
            with PredictionClient(*thread.address) as client:
                with pytest.raises(ServerError) as err:
                    client.refresh(key="")
        assert err.value.server_status == "bad_request"


class TestObserveAndDriftOps:
    """The observability half of the loop: ground truth flows back in
    via ``observe``, drift state flows out via ``drift`` and ``stats``."""

    def test_observe_feeds_monitor_and_counts(self, campaign):
        with serve(campaign, drift_config=FAST_DRIFT) as thread:
            with PredictionClient(*thread.address) as client:
                resp = client.predict(campaign.key, results=campaign.rows[0])
                snap = client.observe(
                    campaign.key,
                    resp["prediction"],
                    resp["prediction"],
                    version=resp["version"],
                )
                assert snap["observations"] == 1
                assert snap["version"] == resp["version"]
                assert snap["fired"] is False
                stats = client.stats()
                assert stats["observations"] == 1
                assert stats["drift_fires"] == 0
                assert stats["stale_keys"] == []

    def test_observe_validates_inputs(self, campaign):
        with serve(campaign, drift_config=FAST_DRIFT) as thread:
            with PredictionClient(*thread.address) as client:
                no_key = client.request(
                    {"op": "observe", "prediction": 1.0, "truth": 1.0}
                )
                assert no_key["status"] == "bad_request"
                bad_num = client.request(
                    {
                        "op": "observe",
                        "key": campaign.key,
                        "prediction": "wat",
                        "truth": 1.0,
                    }
                )
                assert bad_num["status"] == "bad_request"

    def test_drift_fire_marks_key_stale_until_rollover(
        self, campaign, tmp_path
    ):
        import shutil

        root = tmp_path / "registry-copy"
        shutil.copytree(campaign.registry.root, root)
        registry = ModelRegistry(str(root))
        model = registry.load(campaign.key)
        row = campaign.rows[0]
        with ServerThread(
            PredictionServer(registry, drift_config=FAST_DRIFT)
        ) as thread:
            with PredictionClient(*thread.address) as client:
                snap = force_drift(client, campaign.key, row)
                assert snap["fired_version"] == model.version
                stats = client.stats()
                assert stats["drift_fires"] == 1
                assert campaign.key in stats["stale_keys"]
                body = client.drift()
                assert body["monitors"][campaign.key]["stale"] is True
                assert campaign.key in body["stale_keys"]
                # the fired monitor latches: more truth cannot clear it
                client.observe(campaign.key, 1.0, 1.0)
                assert campaign.key in client.stats()["stale_keys"]
                # rollover: republish + refresh clears staleness and re-arms
                receipt = registry.publish(
                    model.scheme,
                    model.manifest["compressor"],
                    model.manifest["compressor_options"],
                    model.predictor,
                )
                refreshed = client.refresh()
                assert refreshed[campaign.key] == receipt.version
                stats = client.stats()
                assert stats["stale_keys"] == []
                body = client.drift()
                monitor = body["monitors"][campaign.key]
                assert monitor["fired"] is False
                assert monitor["version"] == receipt.version
                assert monitor["calibrated"] is False  # recalibrating

    def test_observe_for_new_version_rearms_monitor(self, campaign):
        with serve(campaign, drift_config=FAST_DRIFT) as thread:
            with PredictionClient(*thread.address) as client:
                force_drift(client, campaign.key, campaign.rows[0])
                # ground truth for a different generation re-arms
                snap = client.observe(
                    campaign.key, 1.0, 1.0, version="v9999"
                )
                assert snap["fired"] is False
                assert snap["version"] == "v9999"
                assert snap["observations"] == 1

    def test_drift_configure_replaces_config_and_rearms(self, campaign):
        with serve(campaign, drift_config=FAST_DRIFT) as thread:
            with PredictionClient(*thread.address) as client:
                client.observe(campaign.key, 1.0, 1.0)
                body = client.drift(
                    configure={"window": 16, "hysteresis": 5, "calibration": 8}
                )
                assert body["monitors"][campaign.key]["observations"] == 0
                bad = client.request(
                    {"op": "drift", "configure": {"nonsense": 1}}
                )
                assert bad["status"] == "bad_request"
                tighter = client.request(
                    {"op": "drift", "configure": {"window": 0}}
                )
                assert tighter["status"] == "bad_request"


class TestQuarantinedVersionEviction:
    """A version quarantined on disk must not survive in the warm LRU —
    not even pinned — once a refresh announces the new world."""

    def test_refresh_evicts_pinned_quarantined_version(
        self, campaign, tmp_path
    ):
        import os
        import shutil

        root = tmp_path / "registry-copy"
        shutil.copytree(campaign.registry.root, root)
        registry = ModelRegistry(str(root))
        model = registry.load(campaign.key)
        row = campaign.rows[0]
        # two generations, so quarantining the latest leaves a fallback
        receipt = registry.publish(
            model.scheme,
            model.manifest["compressor"],
            model.manifest["compressor_options"],
            model.predictor,
        )
        with ServerThread(PredictionServer(registry)) as thread:
            with PredictionClient(*thread.address) as client:
                client.refresh()
                # warm BOTH a follow-latest and a pinned entry for v-new
                assert (
                    client.predict(campaign.key, results=row)["version"]
                    == receipt.version
                )
                pinned = client.predict(
                    campaign.key, results=row, version=receipt.version
                )
                assert pinned["version"] == receipt.version
                # the blob rots at rest; a registry-side load quarantines it
                registry.damage_version(campaign.key, receipt.version)
                healed = registry.load(campaign.key)
                assert healed.version == model.version
                assert receipt.version not in registry.versions(campaign.key)
                # refresh: the pinned ghost must be evicted with the rest
                refreshed = client.refresh()
                assert refreshed[campaign.key] == model.version
                assert (
                    client.predict(campaign.key, results=row)["version"]
                    == model.version
                )
                with pytest.raises(ServerError) as err:
                    client.predict(
                        campaign.key, results=row, version=receipt.version
                    )
                assert err.value.server_status in ("not_found", "error")
