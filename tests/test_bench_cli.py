"""Tests for the predict-bench CLI."""

import json

import pytest

from repro.bench.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.schemes == ["khan2023", "jin2022", "rahman2023"]
        assert args.compressors == ["sz3", "zfp"]
        assert args.bounds == [1e-6, 1e-4]

    def test_custom_flags(self):
        args = build_parser().parse_args(
            ["run", "--schemes", "tao2019", "--shape", "8", "8", "4", "--timesteps", "2"]
        )
        assert args.schemes == ["tao2019"]
        assert args.shape == [8, 8, 4]


class TestCommands:
    def test_list_schemes(self, capsys):
        assert main(["list-schemes"]) == 0
        out = capsys.readouterr().out
        assert "rahman2023" in out and "tao2019" in out

    def test_list_compressors(self, capsys):
        assert main(["list-compressors"]) == 0
        out = capsys.readouterr().out
        for name in ("sz3", "zfp", "szx", "noop"):
            assert name in out

    def test_run_small_json(self, capsys):
        code = main(
            [
                "run",
                "--schemes", "tao2019",
                "--compressors", "szx",
                "--bounds", "1e-4",
                "--shape", "8", "8", "4",
                "--timesteps", "1",
                "--fields", "P", "U",
                "--folds", "2",
                "--json",
            ]
        )
        assert code == 0
        records = json.loads(capsys.readouterr().out)
        methods = {(r["method"], r["compressor"]) for r in records}
        assert ("tao2019", "szx") in methods

    def test_run_table_output(self, capsys):
        code = main(
            [
                "run",
                "--schemes", "khan2023",
                "--compressors", "szx",
                "--bounds", "1e-3",
                "--shape", "8", "8", "4",
                "--timesteps", "1",
                "--fields", "P",
                "--folds", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MedAPE" in out and "szx khan2023" in out

    def test_run_process_engine_with_flush_batching(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--schemes", "tao2019",
                "--compressors", "szx",
                "--bounds", "1e-4",
                "--shape", "8", "8", "4",
                "--timesteps", "1",
                "--fields", "P", "U",
                "--folds", "2",
                "--workers", "2",
                "--engine", "process",
                "--flush-every", "4",
                "--checkpoint", str(tmp_path / "proc.db"),
                "--queue-stats",
                "--json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        records = json.loads(captured.out)
        assert any(r["method"] == "tao2019" for r in records)
        assert "queue[process x2]" in captured.err
        assert "checkpoint=" in captured.err

    def test_checkpoint_file_resume(self, tmp_path, capsys):
        argv = [
            "run",
            "--schemes", "tao2019",
            "--compressors", "szx",
            "--bounds", "1e-4",
            "--shape", "8", "8", "4",
            "--timesteps", "1",
            "--fields", "P",
            "--folds", "2",
            "--checkpoint", str(tmp_path / "bench.db"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0  # resumes from the checkpoint cleanly


class TestSimulateCommand:
    def test_scaling_table_printed(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "1", "4",
                "--shape", "8", "8", "4",
                "--timesteps", "2",
                "--compressors", "szx",
                "--bounds", "1e-4",
                "--compute-ms", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "speedup" in out

    def test_no_locality_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "2",
                "--shape", "8", "8", "4",
                "--timesteps", "1",
                "--compressors", "szx",
                "--bounds", "1e-4",
                "--no-locality",
            ]
        )
        assert code == 0


class TestGenerateCommand:
    def test_writes_files(self, tmp_path, capsys):
        out_dir = str(tmp_path / "fields")
        code = main(
            [
                "generate", out_dir,
                "--shape", "8", "8", "4",
                "--timesteps", "2",
                "--fields", "P", "QRAIN",
            ]
        )
        assert code == 0
        import os
        files = sorted(os.listdir(out_dir))
        assert files == ["P_t00.npy", "P_t01.npy", "QRAIN_t00.npy", "QRAIN_t01.npy"]


class TestReportCommand:
    def test_report_from_checkpoint_without_recollection(self, tmp_path, capsys):
        ck = str(tmp_path / "campaign.db")
        run_argv = [
            "run",
            "--schemes", "khan2023",
            "--compressors", "szx",
            "--bounds", "1e-4",
            "--shape", "8", "8", "4",
            "--timesteps", "2",
            "--fields", "P", "U", "QRAIN",
            "--folds", "2",
            "--checkpoint", ck,
        ]
        assert main(run_argv) == 0
        capsys.readouterr()
        # Re-evaluate with a different protocol, no recollection.
        assert main([
            "report", ck,
            "--schemes", "khan2023",
            "--compressors", "szx",
            "--folds", "2",
            "--protocol", "in_sample",
        ]) == 0
        out = capsys.readouterr().out
        assert "szx khan2023" in out
        assert "observations" in out

    def test_report_empty_checkpoint_fails_cleanly(self, tmp_path, capsys):
        ck = str(tmp_path / "empty.db")
        from repro.bench import CheckpointStore

        CheckpointStore(ck).close()
        assert main(["report", ck]) == 1
        assert "no observations" in capsys.readouterr().out


class TestServeCommands:
    def test_serve_and_publish_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--registry", "/tmp/reg", "--port", "7000",
             "--batch-window-ms", "2.5", "--max-batch", "16"]
        )
        assert args.registry == "/tmp/reg"
        assert args.batch_window_ms == 2.5
        args = build_parser().parse_args(
            ["publish", "ck.db", "--registry", "/tmp/reg",
             "--schemes", "khan2023", "--bounds", "1e-4"]
        )
        assert args.checkpoint == "ck.db"
        assert args.bounds == [1e-4]

    def test_publish_empty_checkpoint_fails_cleanly(self, tmp_path, capsys):
        from repro.bench import CheckpointStore

        ck = str(tmp_path / "empty.db")
        CheckpointStore(ck).close()
        assert main(["publish", ck, "--registry", str(tmp_path / "reg")]) == 1
        assert "no observations" in capsys.readouterr().out

    def test_publish_serve_query_roundtrip(self, tmp_path, capsys):
        db = str(tmp_path / "serve.db")
        assert main(
            [
                "run",
                "--schemes", "khan2023",
                "--compressors", "szx",
                "--bounds", "1e-4",
                "--shape", "8", "8", "4",
                "--timesteps", "2",
                "--fields", "P", "U", "QRAIN",
                "--folds", "2",
                "--checkpoint", db,
            ]
        ) == 0
        capsys.readouterr()

        reg = str(tmp_path / "registry")
        assert main(
            ["publish", db, "--registry", reg,
             "--schemes", "khan2023", "--compressors", "szx"]
        ) == 0
        out = capsys.readouterr().out
        assert "published khan2023 / szx" in out

        from repro.bench import CheckpointStore
        from repro.serve import ModelRegistry, PredictionServer, ServerThread

        row = next(
            dict(o)
            for o in CheckpointStore(db).query()
            if o.get("compressor") == "szx"
        )
        with ServerThread(PredictionServer(ModelRegistry(reg))) as thread:
            host, port = thread.address
            base = ["query", "--host", host, "--port", str(port)]

            assert main(base + ["--models"]) == 0
            models = json.loads(capsys.readouterr().out)
            assert any(m["manifest"]["scheme"] == "khan2023" for m in models)

            assert main(
                base
                + ["--scheme", "khan2023", "--compressor", "szx",
                   "--bound", "1e-4", "--results", json.dumps(row)]
            ) == 0
            response = json.loads(capsys.readouterr().out)
            assert response["status"] == "ok"
            assert response["prediction"] > 0

            assert main(base + ["--stats"]) == 0
            stats = json.loads(capsys.readouterr().out)
            assert stats["completed"] >= 1

            # arg error: a derived key needs all three of scheme/compressor/bound
            assert main(base + ["--scheme", "khan2023"]) == 2
            # server error: unknown key surfaces the server status, exit 1
            assert main(base + ["--key", "f" * 16, "--results", "{}"]) == 1
            err = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
            assert err["status"] == "not_found"


class TestChaosFlags:
    def test_chaos_flags_parse(self):
        args = build_parser().parse_args(
            [
                "run",
                "--chaos", "crash:0.1,hang:0.05",
                "--chaos-seed", "7",
                "--max-retries", "4",
                "--retry-base-delay", "0.5",
                "--task-timeout", "30",
            ]
        )
        assert args.chaos == "crash:0.1,hang:0.05"
        assert args.chaos_seed == 7
        assert args.max_retries == 4
        assert args.retry_base_delay == 0.5
        assert args.task_timeout == 30.0

    def test_chaos_run_recovers(self, tmp_path, capsys):
        db = str(tmp_path / "chaos.db")
        code = main(
            [
                "run",
                "--schemes", "tao2019",
                "--compressors", "szx",
                "--bounds", "1e-4",
                "--shape", "8", "8", "4",
                "--timesteps", "1",
                "--fields", "P", "U",
                "--folds", "2",
                "--checkpoint", db,
                "--chaos", "exception:1.0,corrupt:0.5",
                "--chaos-seed", "3",
                "--max-retries", "2",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "chaos[seed=3]" in captured.err
        assert "recovery:" in captured.err
        json.loads(captured.out)  # table still renders
        # The recovered checkpoint is whole: nothing pending, no failures.
        from repro.bench import CheckpointStore

        store = CheckpointStore(db)
        assert store.verify() == []
        assert store.failed_keys() == set()

    def test_simulate_chaos_columns(self, capsys):
        code = main(
            [
                "simulate",
                "--nodes", "1", "2",
                "--shape", "8", "8", "4",
                "--timesteps", "2",
                "--compressors", "szx",
                "--bounds", "1e-4",
                "--chaos", "crash:0.3,hang:0.1",
                "--chaos-seed", "5",
                "--recovery-s", "0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults" in out and "wasted(s)" in out

    def test_report_failures_flag(self, tmp_path, capsys):
        from repro.bench import CheckpointStore

        db = str(tmp_path / "led.db")
        with CheckpointStore(db) as store:
            store.put("okkey", {"compressor": "szx", "v": 1})
            store.record_failure("deadkey", "boom", status=5, attempts=1)
        code = main(
            ["report", db, "--failures", "--schemes", "tao2019",
             "--compressors", "szx", "--json"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "failed[5] deadkey" in captured.err
