"""Tests for the high-level PredictionSession and the external-metrics
bridge."""

import os
import textwrap

import numpy as np
import pytest

from repro.core import PressioData, UnsupportedError
from repro.dataset import HurricaneDataset
from repro.predict import PredictionSession
from repro.predict.metrics import ExternalMetric, parse_output, python_external_command


class TestSessionUntrained:
    def test_predict_formula_scheme(self, smooth_field):
        session = PredictionSession.create(
            "jin2022", "sz3", options={"pressio:abs": 1e-3}
        )
        data = PressioData(smooth_field, metadata={"data_id": "s"})
        cr = session.predict(data)
        assert cr > 0
        assert session.timings["last_predict_s"] > 0

    def test_unsupported_pairing_raises_at_creation(self):
        with pytest.raises(UnsupportedError):
            PredictionSession.create("jin2022", "zfp", options={"pressio:abs": 1e-3})

    def test_option_change_triggers_minimal_invalidation(self, smooth_field):
        session = PredictionSession.create(
            "rahman2023", "sz3", options={"pressio:abs": 1e-3}
        )
        data = PressioData(smooth_field, metadata={"data_id": "s"})
        session._evaluate_row(data)
        computed_first = session.evaluator.computed
        session.set_options({"pressio:abs": 1e-4})
        session._evaluate_row(data)
        # rahman's features are all error-agnostic: nothing recomputes.
        assert session.evaluator.computed == computed_first
        assert session.evaluator.reused >= computed_first

    def test_fit_on_noop_for_untrained(self, smooth_field):
        session = PredictionSession.create(
            "tao2019", "szx", options={"pressio:abs": 1e-3}
        )
        out = session.fit_on([smooth_field])
        assert out is session
        assert "fit_s" not in session.timings


class TestSessionTrained:
    @pytest.fixture(scope="class")
    def trained(self):
        ds = HurricaneDataset(shape=(12, 12, 8), timesteps=[0, 20])
        session = PredictionSession.create(
            "rahman2023", "sz3", options={"pressio:abs": 1e-3}
        )
        session.fit_on(list(ds), bounds=[1e-5, 1e-4, 1e-3], relative=True)
        return session, ds

    def test_fit_records_timings(self, trained):
        session, _ = trained
        assert session.timings["training_s"] > 0
        assert session.timings["fit_s"] > 0

    def test_predict_after_fit(self, trained):
        session, ds = trained
        data = HurricaneDataset(shape=(12, 12, 8), timesteps=[40]).load_data(2)
        arr = data.array
        session.set_options(
            {"pressio:abs": 1e-4 * float(arr.max() - arr.min())}
        )
        cr = session.predict(data)
        assert 1.0 < cr < 1000.0

    def test_state_roundtrip_through_session(self, trained):
        session, ds = trained
        state = session.get_state()
        assert state  # non-empty
        clone = PredictionSession.create(
            "rahman2023", "sz3", options={"pressio:abs": 1e-3}, state=state
        )
        # Earlier tests may have reconfigured the shared session: align
        # the options before comparing predictions.
        session.set_options({"pressio:abs": 1e-3})
        data = ds.load_data(0)
        assert clone.predict(data) == pytest.approx(session.predict(data), rel=1e-9)

    def test_bandwidth_target_session(self):
        ds = HurricaneDataset(shape=(12, 12, 8), timesteps=[0])
        session = PredictionSession.create(
            "rahman2023_bandwidth", "szx", options={"pressio:abs": 1e-3}
        )
        session.fit_on(list(ds), bounds=[1e-4, 1e-3], relative=True)
        bw = session.predict(ds.load_data(0))
        assert bw > 1e5  # bytes/second; szx runs at many MB/s here


SCRIPT = textwrap.dedent(
    """
    import argparse
    import numpy as np

    parser = argparse.ArgumentParser()
    parser.add_argument("--api", type=int)
    parser.add_argument("--input")
    parser.add_argument("--dtype")
    parser.add_argument("--dim", action="append", type=int, default=[])
    parser.add_argument("--option", action="append", default=[])
    args = parser.parse_args()

    data = np.load(args.input)
    assert list(data.shape) == args.dim
    print(f"my_mean={data.mean()}")
    print(f"my_max={data.max()}")
    print("# a comment line to be ignored")
    print("not key value")
    """
)

FAILING_SCRIPT = "import sys; sys.stderr.write('boom'); sys.exit(3)\n"


class TestExternalMetric:
    @pytest.fixture()
    def script(self, tmp_path):
        path = os.path.join(str(tmp_path), "metric.py")
        with open(path, "w") as fh:
            fh.write(SCRIPT)
        return path

    def test_runs_and_parses(self, script, smooth_field):
        metric = ExternalMetric(python_external_command(script), name="user")
        data = PressioData(smooth_field, metadata={"data_id": "s"})
        metric.begin_compress_impl(data, data_options := __import__("repro").core.PressioOptions({"pressio:abs": 1e-3}))
        res = metric.get_metrics_results().to_dict()
        assert res["user:error_code"] == 0.0
        assert res["user:my_mean"] == pytest.approx(float(smooth_field.mean()), rel=1e-5)
        assert res["user:my_max"] == pytest.approx(float(smooth_field.max()), rel=1e-5)

    def test_failure_degrades_not_raises(self, tmp_path, smooth_field):
        path = os.path.join(str(tmp_path), "bad.py")
        with open(path, "w") as fh:
            fh.write(FAILING_SCRIPT)
        metric = ExternalMetric(python_external_command(path), name="bad")
        data = PressioData(smooth_field, metadata={"data_id": "s"})
        from repro.core import PressioOptions

        metric.begin_compress_impl(data, PressioOptions())
        res = metric.get_metrics_results().to_dict()
        assert res["bad:error_code"] == 3.0
        assert "boom" in res["bad:error_msg"]

    def test_missing_command(self, smooth_field):
        from repro.core import PressioOptions

        metric = ExternalMetric(["/nonexistent/binary"], name="ghost")
        metric.begin_compress_impl(
            PressioData(smooth_field, metadata={"data_id": "s"}), PressioOptions()
        )
        res = metric.get_metrics_results().to_dict()
        assert res["ghost:error_code"] == 1.0

    def test_parse_output_tolerant(self):
        parsed = parse_output("a=1.5\njunk\n# c\nb = 2\nbad=notnum\n")
        assert parsed == {"a": 1.5, "b": 2.0}

    def test_in_evaluator_with_custom_invalidations(self, script, smooth_field):
        from repro.compressors import make_compressor
        from repro.core import ERROR_DEPENDENT
        from repro.predict import MetricsEvaluator

        comp = make_compressor("sz3", pressio__abs=1e-3)
        metric = ExternalMetric(
            python_external_command(script), name="user",
            invalidations=(ERROR_DEPENDENT,),
        )
        ev = MetricsEvaluator(comp, [metric])
        data = PressioData(smooth_field, metadata={"data_id": "s"})
        first = ev.evaluate(data)
        again = ev.evaluate(data, changed=[])
        assert ev.reused == 1
        assert first.to_dict() == again.to_dict()
