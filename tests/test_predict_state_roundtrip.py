"""Satellite bugfix guard: every scheme's serialised predictor state
round-trips exactly through the serve codec.

A registry blob must reconstruct a predictor whose ``predict_many`` is
element-identical to the trained one — "almost equal" models drift
silently in production.  This parametrises over the whole scheme
registry so a new scheme with unserialisable or incomplete state fails
here (and at publish time) rather than at first query.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors import make_compressor
from repro.predict.scheme import get_scheme, scheme_registry
from repro.serve import decode_state, encode_state

#: Base keys derived features are computed from (fxrz's derive_features).
EXTRA_KEYS = ["sparsity:zero_ratio", "stat:value_range", "config:log_abs_bound"]

SCHEME_KWARGS = {
    "rahman2023": dict(n_estimators=4, max_depth=3, augment_factor=1.0),
    "rahman2023_bandwidth": dict(n_estimators=4, max_depth=3, augment_factor=1.0),
}

ALL_SCHEMES = sorted(scheme_registry)
TRAINABLE = [s for s in ALL_SCHEMES if get_scheme(s).needs_training]


def make_rows(scheme, n=20, seed=0):
    rng = np.random.default_rng(seed)
    keys = sorted(set(scheme.feature_keys()) | set(EXTRA_KEYS))
    rows = [
        {k: float(v) for k, v in zip(keys, rng.random(len(keys)) + 0.1)}
        for _ in range(n)
    ]
    targets = rng.random(n) * 20.0 + 1.0
    return rows, targets


def fit_fresh_pair(scheme_id):
    scheme = get_scheme(scheme_id, **SCHEME_KWARGS.get(scheme_id, {}))
    comp = make_compressor("sz3", pressio__abs=1e-4)
    predictor = scheme.get_predictor(comp)
    rows, y = make_rows(scheme)
    predictor.fit(rows, y)
    fresh = scheme.get_predictor(make_compressor("sz3", pressio__abs=1e-4))
    return predictor, fresh, rows


@pytest.mark.parametrize("scheme_id", TRAINABLE)
def test_state_roundtrips_element_exact(scheme_id):
    predictor, fresh, rows = fit_fresh_pair(scheme_id)
    state = predictor.get_state()
    assert state, f"{scheme_id}: fitted predictor returned empty state"
    fresh.set_state(decode_state(encode_state(state)))
    want = predictor.predict_many(rows)
    got = fresh.predict_many(rows)
    assert want.shape == got.shape
    assert np.array_equal(want, got), (
        f"{scheme_id}: restored predictions differ "
        f"(max |delta| = {float(np.max(np.abs(want - got))):g})"
    )


@pytest.mark.parametrize("scheme_id", TRAINABLE)
def test_state_survives_double_roundtrip(scheme_id):
    # encode(decode(encode(s))) == encode(s): no drift on re-publish.
    predictor, _, _ = fit_fresh_pair(scheme_id)
    blob = encode_state(predictor.get_state())
    assert encode_state(decode_state(blob)) == blob


@pytest.mark.parametrize("scheme_id", [s for s in ALL_SCHEMES if not get_scheme(s).needs_training])
def test_formula_schemes_have_empty_state(scheme_id):
    scheme = get_scheme(scheme_id)
    predictor = scheme.get_predictor(make_compressor("sz3", pressio__abs=1e-4))
    assert predictor.get_state() == {}
    assert predictor.is_fitted()


def test_fxrz_state_carries_sparsity_correction():
    predictor, fresh, rows = fit_fresh_pair("rahman2023")
    state = predictor.get_state()
    assert state["sparsity_correction"] is True
    # flip the flag on the fresh instance; set_state must restore it —
    # the forest was fit against density-adjusted targets, so a restored
    # model without the flag is off by the density factor.
    fresh.sparsity_correction = False
    fresh.set_state(decode_state(encode_state(state)))
    assert fresh.sparsity_correction is True
    assert np.array_equal(predictor.predict_many(rows), fresh.predict_many(rows))


def test_zperf_state_carries_active_order():
    predictor, fresh, rows = fit_fresh_pair("wang2023")
    predictor.set_active_order(2)
    # refit under the now-active order so predictions are self-consistent
    _, y = make_rows(get_scheme("wang2023"))
    predictor.fit(rows, y)
    state = predictor.get_state()
    assert state["active_order"] == 2
    assert state["orders"] == (0, 1, 2)
    fresh.set_state(decode_state(encode_state(state)))
    assert fresh._active_order == 2
    assert np.array_equal(predictor.predict_many(rows), fresh.predict_many(rows))


def test_bandwidth_variant_disables_correction():
    predictor, fresh, rows = fit_fresh_pair("rahman2023_bandwidth")
    state = predictor.get_state()
    assert state["sparsity_correction"] is False
    fresh.set_state(decode_state(encode_state(state)))
    assert fresh.sparsity_correction is False
    assert np.array_equal(predictor.predict_many(rows), fresh.predict_many(rows))
