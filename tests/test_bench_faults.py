"""Tests for fault-domain supervision: RetryPolicy, ChaosPlan, quarantine."""

import time

import pytest

from repro.bench import ChaosPlan, CheckpointStore, RetryPolicy, TaskQueue
from repro.bench.faults import CHAOS_CLASSES, _stable_unit_interval
from repro.bench.tasks import Task, precompute_keys
from repro.core import Status, TaskFailedError, UnsupportedError


def make_tasks(n_data=2, per_data=2):
    tasks = [
        Task(
            data_index=d,
            data_id=f"data/{d}",
            compressor_id="sz3",
            compressor_options={"pressio:abs": 10.0 ** -(k + 2)},
            dataset_config={"entry:data_id": f"data/{d}"},
            replicate=0,
            nbytes=1 << 20,
        )
        for d in range(n_data)
        for k in range(per_data)
    ]
    precompute_keys(tasks)
    return tasks


class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy()
        assert policy.classify(int(Status.UNSUPPORTED)) == "permanent"
        assert policy.classify(int(Status.INVALID_OPTION)) == "permanent"
        assert policy.classify(int(Status.GENERIC_ERROR)) == "transient"
        assert policy.classify(int(Status.TIMEOUT)) == "transient"
        assert policy.classify(int(Status.TASK_FAILED)) == "transient"

    def test_permanent_never_retries(self):
        policy = RetryPolicy(max_retries=5)
        assert not policy.should_retry(int(Status.UNSUPPORTED), attempts=1)
        assert policy.should_retry(int(Status.GENERIC_ERROR), attempts=1)
        assert not policy.should_retry(int(Status.GENERIC_ERROR), attempts=6)

    def test_zero_base_delay_disables_backoff(self):
        policy = RetryPolicy()
        assert policy.delay("k", 1) == 0.0
        assert policy.delay("k", 5) == 0.0

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, backoff=2.0, jitter=0.0, max_delay=100.0)
        assert policy.delay("k", 1) == pytest.approx(0.1)
        assert policy.delay("k", 2) == pytest.approx(0.2)
        assert policy.delay("k", 3) == pytest.approx(0.4)

    def test_max_delay_caps(self):
        policy = RetryPolicy(base_delay=1.0, backoff=10.0, jitter=0.0, max_delay=5.0)
        assert policy.delay("k", 4) == 5.0

    def test_jitter_is_deterministic_and_bounded(self):
        a = RetryPolicy(base_delay=1.0, jitter=0.2, seed=7)
        b = RetryPolicy(base_delay=1.0, jitter=0.2, seed=7)
        c = RetryPolicy(base_delay=1.0, jitter=0.2, seed=8)
        d1, d2 = a.delay("key", 1), b.delay("key", 1)
        assert d1 == d2  # same seed reproduces the exact schedule
        assert 0.8 <= d1 <= 1.2  # within ±jitter of the raw delay
        assert a.delay("key", 1) != c.delay("key", 1)  # seed matters
        assert a.delay("key", 1) != a.delay("other", 1)  # key matters

    def test_stable_unit_interval_cross_process_safe(self):
        # SHA-256 based, not hash(): identical in any process.
        v = _stable_unit_interval(1, "crash", "abc")
        assert v == _stable_unit_interval(1, "crash", "abc")
        assert 0.0 <= v < 1.0


class TestQueuePolicyIntegration:
    def test_permanent_error_quarantined_first_attempt(self):
        tasks = make_tasks(n_data=1, per_data=2)
        bad_key = tasks[0].key()

        def fn(task, worker):
            if task.key() == bad_key:
                raise UnsupportedError("scheme cannot model this compressor")
            return {"ok": 1}

        results, stats = TaskQueue(1, "serial", max_retries=3).run(tasks, fn)
        assert stats.quarantined == 1 and stats.retries == 0
        failed = [r for r in results if not r.ok][0]
        assert failed.attempts == 1  # no attempts burned on a lost cause
        assert failed.status == int(Status.UNSUPPORTED)

    @pytest.mark.parametrize("engine,workers", [("serial", 1), ("thread", 3)])
    def test_backoff_delays_are_respected(self, engine, workers):
        tasks = make_tasks(n_data=1, per_data=1)
        policy = RetryPolicy(max_retries=2, base_delay=0.05, backoff=1.0, jitter=0.0)
        attempts_t = []

        def fn(task, worker):
            attempts_t.append(time.monotonic())
            if len(attempts_t) < 3:
                raise TaskFailedError("transient", task_key=task.key())
            return {"ok": 1}

        _, stats = TaskQueue(workers, engine, retry_policy=policy).run(tasks, fn)
        assert stats.failed == 0 and stats.retries == 2
        assert stats.backoff_seconds == pytest.approx(0.1)
        gaps = [b - a for a, b in zip(attempts_t, attempts_t[1:])]
        assert all(g >= 0.045 for g in gaps), gaps

    def test_custom_permanent_statuses(self):
        tasks = make_tasks(n_data=1, per_data=1)
        policy = RetryPolicy(
            max_retries=3,
            permanent_statuses=frozenset({int(Status.TASK_FAILED)}),
        )

        def fn(task, worker):
            raise TaskFailedError("configured as permanent")

        results, stats = TaskQueue(1, "serial", retry_policy=policy).run(tasks, fn)
        assert stats.quarantined == 1
        assert results[0].attempts == 1


class TestChaosPlan:
    def test_from_spec_parses_rates(self):
        plan = ChaosPlan.from_spec("crash:0.25,hang:0.5,exception")
        assert plan.rates["crash"] == 0.25
        assert plan.rates["hang"] == 0.5
        assert plan.rates["exception"] == 1.0
        assert plan.rates["corrupt"] == 0.0

    def test_from_spec_rejects_unknown_class(self):
        with pytest.raises(ValueError, match="unknown chaos class"):
            ChaosPlan.from_spec("segfault:0.1")

    def test_selection_is_deterministic(self):
        a = ChaosPlan.from_spec("exception:0.5", seed=3)
        b = ChaosPlan.from_spec("exception:0.5", seed=3)
        keys = [t.key() for t in make_tasks(4, 4)]
        assert [a.selects("exception", k) for k in keys] == [
            b.selects("exception", k) for k in keys
        ]
        c = ChaosPlan.from_spec("exception:0.5", seed=4)
        assert [a.selects("exception", k) for k in keys] != [
            c.selects("exception", k) for k in keys
        ]

    def test_fire_once_latches_across_clones(self, tmp_path):
        plan = ChaosPlan.from_spec("exception:1.0", state_dir=str(tmp_path))
        clone = plan.bind(lambda t, w: {"ok": 1})
        assert clone._fire_once("exception", "k")
        assert not clone._fire_once("exception", "k")
        assert not plan._fire_once("exception", "k")  # shared marker state
        assert plan.injected_counts()["exception"] == 1

    def test_exception_injection_recovers_via_retries(self, tmp_path):
        tasks = make_tasks(n_data=2, per_data=2)
        plan = ChaosPlan.from_spec("exception:1.0", state_dir=str(tmp_path))
        fn = plan.bind(lambda t, w: {"ok": 1})
        results, stats = TaskQueue(1, "serial", max_retries=2).run(tasks, fn)
        # Every task faulted exactly once, then succeeded on retry.
        assert stats.failed == 0 and stats.completed == len(tasks)
        assert stats.retries == len(tasks)
        assert plan.injected_counts()["exception"] == len(tasks)

    def test_crash_degrades_to_exception_in_main_process(self, tmp_path):
        tasks = make_tasks(n_data=1, per_data=1)
        plan = ChaosPlan.from_spec("crash:1.0", state_dir=str(tmp_path))
        fn = plan.bind(lambda t, w: {"ok": 1})
        # Serial engine runs in the main process: os._exit would kill the
        # test run, so the plan must degrade to a raised fault instead.
        results, stats = TaskQueue(1, "serial", max_retries=1).run(tasks, fn)
        assert stats.failed == 0 and stats.retries == 1

    def test_sink_failures_fire_once_per_key(self, tmp_path):
        tasks = make_tasks(n_data=1, per_data=3)
        plan = ChaosPlan.from_spec("sink:1.0", state_dir=str(tmp_path))
        seen = []
        sink = plan.wrap_sink(lambda r: seen.append(r.task.key()))
        results, stats = TaskQueue(1, "serial").run(
            tasks, lambda t, w: {"ok": 1}, on_result=sink
        )
        # Each commit faulted once; tasks are marked failed (sink lost them).
        assert stats.failed == len(tasks)
        assert seen == []
        # A recovery pass commits cleanly: every marker already fired.
        results, stats = TaskQueue(1, "serial").run(
            tasks, lambda t, w: {"ok": 1}, on_result=sink
        )
        assert stats.failed == 0 and len(seen) == len(tasks)

    def test_corrupt_checkpoint_detected_by_verify(self, tmp_path):
        plan = ChaosPlan.from_spec("corrupt:1.0", state_dir=str(tmp_path / "chaos"))
        store = CheckpointStore(str(tmp_path / "c.db"))
        for i in range(4):
            store.put(f"k{i}", {"value": i})
        victims = plan.corrupt_checkpoint(store)
        assert sorted(victims) == [f"k{i}" for i in range(4)]
        quarantined = store.verify()
        assert sorted(quarantined) == sorted(victims)
        # Quarantined rows are pending again — a resume recomputes them.
        assert sorted(store.pending([f"k{i}" for i in range(4)])) == sorted(victims)
        # Markers latched: a second corruption pass finds nothing to do.
        store.put("k0", {"value": 0})
        assert plan.corrupt_checkpoint(store) == []

    def test_plan_is_picklable(self, tmp_path):
        import pickle

        plan = ChaosPlan.from_spec("crash:0.5,hang:0.25", seed=9, state_dir=str(tmp_path))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.rates == plan.rates
        assert clone.seed == plan.seed
        assert clone.state_dir == plan.state_dir

    def test_all_classes_enumerated(self):
        assert set(CHAOS_CLASSES) == {
            "crash",
            "hang",
            "exception",
            "corrupt",
            "sink",
            "trainer_kill",
            "publish_corrupt",
            "refresh_drop",
            "cache_kill",
            "rank_kill",
        }

    def test_loop_faults_fire_once_per_site_and_count(self, tmp_path):
        plan = ChaosPlan(
            trainer_kill_rate=1.0,
            publish_corrupt_rate=1.0,
            refresh_drop_rate=0.0,
            seed=3,
            state_dir=str(tmp_path),
        )
        assert plan.loop_fault("trainer_kill", "round1:collect") is True
        # once-only: the same site never fires twice
        assert plan.loop_fault("trainer_kill", "round1:collect") is False
        assert plan.loop_fault("publish_corrupt", "round1:key") is True
        assert plan.loop_fault("refresh_drop", "round1:addr") is False
        counts = plan.injected_counts()
        assert counts["trainer_kill"] == 1
        assert counts["publish_corrupt"] == 1
        assert counts["refresh_drop"] == 0
        with pytest.raises(ValueError):
            plan.loop_fault("frobnicate", "x")
