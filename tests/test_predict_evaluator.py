"""Tests for the invalidation-aware metrics evaluator (Q1 of the paper)."""

import numpy as np
import pytest

from repro.compressors import make_compressor
from repro.core import ERROR_AGNOSTIC, ERROR_DEPENDENT, PressioData
from repro.predict import MetricsEvaluator, timing_bucket
from repro.predict.metrics import (
    QuantizedEntropyMetric,
    SpatialMetric,
    ValueStatsMetric,
)


@pytest.fixture
def data(smooth_field):
    return PressioData(smooth_field, metadata={"data_id": "test/smooth"})


@pytest.fixture
def other_data(sparse_field):
    return PressioData(sparse_field, metadata={"data_id": "test/sparse"})


def make_eval():
    comp = make_compressor("sz3", pressio__abs=1e-3)
    return MetricsEvaluator(
        comp, [ValueStatsMetric(), SpatialMetric(), QuantizedEntropyMetric()]
    )


class TestCaching:
    def test_first_evaluation_computes_everything(self, data):
        ev = make_eval()
        res = ev.evaluate(data)
        assert ev.computed == 3 and ev.reused == 0
        assert "stat:std" in res and "qentropy:bits" in res

    def test_unchanged_reevaluation_reuses_everything(self, data):
        ev = make_eval()
        ev.evaluate(data)
        ev.evaluate(data, changed=[])
        assert ev.computed == 3 and ev.reused == 3

    def test_bound_change_recomputes_only_error_dependent(self, data):
        ev = make_eval()
        ev.evaluate(data)
        ev.set_options({"pressio:abs": 1e-5})
        ev.evaluate(data, changed=["pressio:abs"])
        # 3 initial + 1 recomputed (qentropy); 2 error-agnostic reused.
        assert ev.computed == 4
        assert ev.reused == 2

    def test_bound_change_changes_qentropy_value(self, data):
        ev = make_eval()
        fine = ev.evaluate(data)["qentropy:bits"]
        ev.set_options({"pressio:abs": 1e-1})
        coarse = ev.evaluate(data, changed=["pressio:abs"])["qentropy:bits"]
        assert coarse < fine

    def test_new_data_computes_fresh(self, data, other_data):
        ev = make_eval()
        ev.evaluate(data)
        ev.evaluate(other_data)
        assert ev.computed == 6
        assert ev.cache_size() == 6

    def test_explicit_class_invalidation(self, data):
        ev = make_eval()
        ev.evaluate(data)
        ev.evaluate(data, changed=[ERROR_AGNOSTIC])
        # The two error-agnostic metrics recompute; qentropy is reused.
        assert ev.computed == 5 and ev.reused == 1

    def test_clear_cache(self, data):
        ev = make_eval()
        ev.evaluate(data)
        ev.clear_cache()
        ev.evaluate(data, changed=[])
        assert ev.computed == 6

    def test_cached_value_is_equal_not_just_present(self, data):
        ev = make_eval()
        first = ev.evaluate(data).to_dict()
        second = ev.evaluate(data, changed=[]).to_dict()
        assert first == second


class TestTimingBuckets:
    def test_bucket_mapping(self):
        assert timing_bucket((ERROR_DEPENDENT,)) == "error_dependent"
        assert timing_bucket((ERROR_AGNOSTIC,)) == "error_agnostic"
        assert timing_bucket(("pressio:abs",)) == "error_dependent"

    def test_stage_seconds_accumulate(self, data):
        ev = make_eval()
        ev.evaluate(data)
        stats = ev.stats()
        assert stats["seconds_error_agnostic"] > 0
        assert stats["seconds_error_dependent"] > 0


class TestTrainingRun:
    def test_training_run_produces_ground_truth(self, data):
        from repro.core import SizeMetrics, TimeMetrics

        comp = make_compressor("sz3", pressio__abs=1e-3)
        ev = MetricsEvaluator(comp, [SizeMetrics(), TimeMetrics()])
        res = ev.evaluate_with_compression(data)
        assert res["size:compression_ratio"] > 1
        assert ev.stats()["seconds_training"] > 0
