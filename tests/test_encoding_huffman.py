"""Tests for canonical Huffman coding (construction + vectorised decode)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CorruptStreamError
from repro.encoding import huffman
from repro.encoding.huffman import (
    HuffmanCode,
    build_code,
    canonical_codes,
    huffman_code_lengths,
    limit_code_lengths,
)


def kraft_sum(lengths: np.ndarray) -> float:
    lengths = np.asarray(lengths)
    return float(np.sum(0.5 ** lengths[lengths > 0]))


class TestLengths:
    def test_two_symbols(self):
        lengths = huffman_code_lengths(np.array([5, 5]))
        assert lengths.tolist() == [1, 1]

    def test_skewed_distribution_shorter_codes_for_frequent(self):
        counts = np.array([100, 10, 5, 1])
        lengths = huffman_code_lengths(counts)
        assert lengths[0] == lengths.min()
        assert lengths[3] == lengths.max()

    def test_kraft_equality(self):
        counts = np.array([7, 1, 3, 9, 2, 2, 4])
        lengths = huffman_code_lengths(counts)
        assert kraft_sum(lengths) == pytest.approx(1.0)

    def test_single_symbol(self):
        assert huffman_code_lengths(np.array([4])).tolist() == [1]

    def test_empty(self):
        assert huffman_code_lengths(np.array([], dtype=np.int64)).size == 0

    def test_optimality_vs_entropy(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(1, 1000, size=40)
        lengths = huffman_code_lengths(counts)
        p = counts / counts.sum()
        avg = float((p * lengths).sum())
        entropy = float(-(p * np.log2(p)).sum())
        assert entropy <= avg < entropy + 1.0


class TestLengthLimiting:
    def test_noop_when_within_limit(self):
        lengths = np.array([2, 2, 2, 2])
        assert np.array_equal(limit_code_lengths(lengths, 8), lengths)

    def test_limits_deep_codes(self):
        # A Fibonacci-weighted alphabet forces deep Huffman trees.
        counts = np.array([1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987])
        raw = huffman_code_lengths(counts)
        assert raw.max() > 8
        limited = limit_code_lengths(raw, 8)
        assert limited.max() <= 8
        assert kraft_sum(limited) <= 1.0 + 1e-12

    def test_frequent_symbols_keep_short_codes(self):
        counts = np.array([1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144])
        raw = huffman_code_lengths(counts)
        limited = limit_code_lengths(raw, 6)
        # The most frequent symbol (last) must have the minimum length.
        assert limited[-1] == limited.min()


class TestCanonicalCodes:
    def test_prefix_free(self):
        lengths = np.array([2, 2, 3, 3, 3, 4, 4])
        codes = canonical_codes(lengths)
        items = sorted(zip(lengths.tolist(), codes.tolist()))
        for i, (l1, c1) in enumerate(items):
            for l2, c2 in items[i + 1 :]:
                # c1 (shorter or equal) must not prefix c2.
                assert (c2 >> (l2 - l1)) != c1 or (l1 == l2 and c1 != c2)

    def test_codes_fit_length(self):
        lengths = np.array([1, 2, 3, 3])
        codes = canonical_codes(lengths)
        for code, length in zip(codes, lengths):
            assert int(code) < (1 << int(length))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "values",
        [
            np.array([], dtype=np.int64),
            np.array([42]),
            np.array([7] * 50),
            np.array([-1, 0, 1] * 30),
            np.arange(-500, 500),
        ],
        ids=["empty", "single", "constant", "ternary", "uniform"],
    )
    def test_fixed_cases(self, values):
        out = huffman.decode(huffman.encode(np.asarray(values, dtype=np.int64)))
        assert np.array_equal(out, values)

    def test_skewed_large(self):
        rng = np.random.default_rng(3)
        values = (rng.zipf(1.3, size=50_000) % 1000).astype(np.int64)
        stream = huffman.encode(values)
        assert np.array_equal(huffman.decode(stream), values)
        assert len(stream) < values.nbytes  # actually compresses

    @given(st.lists(st.integers(min_value=-(2**31), max_value=2**31), max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(arr)), arr)

    def test_external_code_reuse(self):
        train = np.array([0, 0, 0, 1, 1, 2], dtype=np.int64)
        code = build_code(train)
        stream = huffman.encode(np.array([2, 1, 0, 0]), code=code)
        assert huffman.decode(stream).tolist() == [2, 1, 0, 0]

    def test_external_code_missing_symbol_raises(self):
        code = build_code(np.array([0, 1]))
        with pytest.raises(ValueError):
            huffman.encode(np.array([5]), code=code)


class TestStreamValidation:
    def test_truncated_stream(self):
        stream = huffman.encode(np.arange(100))
        with pytest.raises(CorruptStreamError):
            huffman.decode(stream[: len(stream) // 2])

    def test_too_short(self):
        with pytest.raises(CorruptStreamError):
            huffman.decode(b"abc")


class TestCodeIntrospection:
    def test_expected_bits(self):
        code = build_code(np.array([0, 0, 0, 0, 1, 2]))
        counts = np.array([4, 1, 1])
        avg = code.expected_bits_per_symbol(counts)
        assert 1.0 <= avg <= 2.0

    def test_decode_tables_cover_all_codes(self):
        code = build_code(np.arange(10))
        sym_table, len_table = code.decode_tables()
        assert sym_table.size == 1 << code.max_length
        # Every symbol index must appear in the table.
        assert set(sym_table[len_table > 0].tolist()) == set(range(10))

    def test_max_length_respected(self):
        rng = np.random.default_rng(1)
        values = (rng.zipf(1.1, 5000) % 3000).astype(np.int64)
        code = build_code(values, max_length=12)
        assert code.max_length <= 12
