"""The cluster engine end to end: spec resolution, the worker loop, TCP
spawn campaigns, rank_kill chaos, and the CLI seams.

The TCP tests fork real worker subprocesses over loopback — the same
path CI's cluster job exercises — so they prove the whole chain:
rendezvous, init shipping (pickled task functions resolve through the
propagated ``PYTHONPATH``), durable-before-ack shard writes, rank
supervision, and the final merge.  MPI tests run only where mpi4py and
a launcher exist; everywhere else they skip with a notice.
"""

import shutil
import subprocess
import sys
import textwrap
from collections import deque

import pytest

from repro.bench import CheckpointStore, Task, TaskQueue
from repro.bench.cluster import ClusterSpec, discover_shards, mpi_available, shard_path
from repro.bench.cluster.spec import detect_launch_env, parse_hostport
from repro.bench.cluster.wire import FrameError
from repro.bench.cluster.worker import run_worker
from repro.bench.faults import ChaosPlan


def make_tasks(n_data=2, per_data=2):
    tasks = []
    for d in range(n_data):
        for k in range(per_data):
            tasks.append(
                Task(
                    data_index=d,
                    data_id=f"data/{d}",
                    compressor_id="sz3",
                    compressor_options={"pressio:abs": 10.0 ** -(k + 2)},
                    dataset_config={"entry:data_id": f"data/{d}"},
                    replicate=0,
                    nbytes=1 << 10,
                )
            )
    return tasks


def _echo_task(task, worker):
    """Module-level so spawned worker ranks can unpickle it."""
    return {"data_id": task.data_id, "bound": task.compressor_options["pressio:abs"]}


def _fail_on_data0(task, worker):
    if task.data_id == "data/0":
        raise ValueError("planned failure for data/0")
    return {"ok": 1}


CLUSTER_ENV = (
    "REPRO_CLUSTER_RANK",
    "REPRO_CLUSTER_WORLD",
    "REPRO_CLUSTER_COORD",
    "SLURM_PROCID",
    "SLURM_NTASKS",
    "OMPI_COMM_WORLD_RANK",
    "OMPI_COMM_WORLD_SIZE",
    "PMI_RANK",
    "PMI_SIZE",
)


@pytest.fixture(autouse=True)
def _clean_launch_env(monkeypatch):
    """Tests control the launcher environment explicitly."""
    for name in CLUSTER_ENV:
        monkeypatch.delenv(name, raising=False)


class TestClusterSpec:
    def test_spawn_is_the_laptop_default(self):
        spec = ClusterSpec()
        assert spec.resolve() == "spawn"
        assert spec.rank == 0
        assert not spec.is_worker_rank

    def test_no_spawn_no_launcher_downgrades(self):
        assert ClusterSpec(spawn=False).resolve() is None

    def test_mpi_backend_without_world_downgrades(self):
        # mpi4py absent, or present with a world of 1: either way an
        # explicit backend="mpi" has no cluster to run on.
        spec = ClusterSpec(backend="mpi")
        if not mpi_available():
            assert spec.resolve() is None

    def test_launched_env_detected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_RANK", "2")
        monkeypatch.setenv("REPRO_CLUSTER_WORLD", "4")
        monkeypatch.setenv("REPRO_CLUSTER_COORD", "node0:7621")
        spec = ClusterSpec()
        assert spec.resolve() == "launched-tcp"
        assert spec.rank == 2 and spec.world == 4
        assert spec.coord == "node0:7621"
        assert spec.is_worker_rank

    def test_launched_rank0_is_coordinator(self, monkeypatch):
        monkeypatch.setenv("SLURM_PROCID", "0")
        monkeypatch.setenv("SLURM_NTASKS", "4")
        spec = ClusterSpec(coord="127.0.0.1:7621")
        assert spec.resolve() == "launched-tcp"
        assert not spec.is_worker_rank

    def test_launched_env_without_coord_spawns_instead(self, monkeypatch):
        monkeypatch.setenv("SLURM_PROCID", "1")
        monkeypatch.setenv("SLURM_NTASKS", "4")
        assert ClusterSpec().resolve() == "spawn"

    def test_detect_launch_env_priority(self, monkeypatch):
        monkeypatch.setenv("SLURM_PROCID", "3")
        monkeypatch.setenv("REPRO_CLUSTER_RANK", "1")
        assert detect_launch_env()["rank"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="backend"):
            ClusterSpec(backend="carrier-pigeon")
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            ClusterSpec(heartbeat_interval=1.0, heartbeat_timeout=0.5)

    def test_parse_hostport(self):
        assert parse_hostport("node0:7621") == ("node0", 7621)
        with pytest.raises(ValueError):
            parse_hostport("7621")
        with pytest.raises(ValueError):
            parse_hostport("node0:")


class TestEngineDowngrade:
    def test_no_deployment_downgrades_to_process_with_warning(self):
        with pytest.warns(UserWarning, match="falling back to 'process'"):
            q = TaskQueue(2, "cluster", cluster=ClusterSpec(spawn=False))
        assert q.engine == "process"
        assert q.requested_engine == "cluster"

    def test_downgrade_recorded_in_stats(self):
        with pytest.warns(UserWarning, match="falling back to 'process'"):
            q = TaskQueue(2, "cluster", cluster=ClusterSpec(spawn=False))
        _, stats = q.run(make_tasks(1, 1), _echo_task)
        assert stats.engine == "process"
        assert stats.requested_engine == "cluster"

    def test_single_worker_cluster_stays_cluster(self):
        # One worker rank is still a separate process with its own
        # shard — the 1-rank cell of a scaling sweep, not a downgrade.
        q = TaskQueue(1, "cluster", cluster=ClusterSpec())
        assert q.engine == "cluster"

    def test_cluster_run_without_task_fn_requires_worker_rank(self):
        q = TaskQueue(2, "cluster", cluster=ClusterSpec())
        with pytest.raises(ValueError, match="task_fn"):
            q.run(make_tasks(1, 1), None)


class FakeTransport:
    """Scripted in-process transport for worker-loop unit tests."""

    def __init__(self, script):
        self._script = deque(script)
        self.sent = []
        self.bytes_sent = 0
        self.bytes_received = 0

    def recv(self):
        if not self._script:
            raise FrameError("script exhausted")
        return self._script.popleft()

    def send(self, msg):
        self.sent.append(msg)
        return 0


class TestWorkerLoop:
    def test_executes_flushes_and_acks_without_payload(self, tmp_path):
        tasks = make_tasks(1, 2)
        shard = shard_path(str(tmp_path), 1)
        transport = FakeTransport(
            [
                {
                    "op": "init",
                    "worker_init": None,
                    "task_fn": _echo_task,
                    "chaos": None,
                    "shard_path": shard,
                    "heartbeat_interval": 30.0,
                    "flush_every": 2,
                },
                {"op": "run", "tasks": tasks},
                {"op": "stop"},
            ]
        )
        assert run_worker(transport, rank=1) == 0
        results = [m for m in transport.sent if m["op"] == "result"]
        assert len(results) == 1
        for rank, payload, error, status, elapsed in results[0]["outcomes"]:
            assert rank == 1
            assert payload is None  # payloads live in the shard, not the ack
            assert error is None
        bye = [m for m in transport.sent if m["op"] == "bye"]
        assert bye and bye[0]["stats"]["completed"] == 2
        with CheckpointStore(shard) as store:
            assert sorted(store.keys()) == sorted(t.key() for t in tasks)
            assert store.verify() == []
            assert store.get_meta("last_run_stats") is not None

    def test_task_exception_recorded_with_rank_origin(self, tmp_path):
        tasks = make_tasks(2, 1)
        shard = shard_path(str(tmp_path), 3)
        transport = FakeTransport(
            [
                {
                    "op": "init",
                    "worker_init": None,
                    "task_fn": _fail_on_data0,
                    "chaos": None,
                    "shard_path": shard,
                    "heartbeat_interval": 30.0,
                    "flush_every": 4,
                },
                {"op": "run", "tasks": tasks},
                {"op": "stop"},
            ]
        )
        assert run_worker(transport, rank=3) == 0
        (result,) = [m for m in transport.sent if m["op"] == "result"]
        errors = [o[2] for o in result["outcomes"]]
        assert any(e and "planned failure" in e for e in errors)
        assert any(e is None for e in errors)
        with CheckpointStore(shard) as store:
            ledger = store.failures()
            assert len(ledger) == 1
            assert ledger[0]["origin"] == "rank3"

    def test_lost_coordinator_is_exit_1(self, tmp_path):
        transport = FakeTransport([])
        assert run_worker(transport, rank=1) == 1


class TestTcpSpawnEndToEnd:
    def test_campaign_completes_and_merges(self, tmp_path):
        tasks = make_tasks(2, 2)
        spec = ClusterSpec(shard_dir=str(tmp_path / "shards"))
        q = TaskQueue(2, "cluster", cluster=spec)
        store = CheckpointStore(str(tmp_path / "merged.db"))
        results, stats = q.run(tasks, _echo_task, merge_store=store)
        assert stats.engine == "cluster"
        assert stats.completed == len(tasks) and stats.failed == 0
        assert all(r.ok and r.payload is None for r in results)
        assert {r.worker for r in results} <= {1, 2}
        assert stats.shards_merged == len(discover_shards(str(tmp_path / "shards")))
        assert stats.shards_merged >= 1
        assert stats.wire_bytes_sent > 0 and stats.wire_bytes_received > 0
        assert sorted(store.keys()) == sorted(t.key() for t in tasks)
        assert store.verify() == []
        store.close()

    def test_failures_travel_with_rank_origin(self, tmp_path):
        tasks = make_tasks(2, 1)
        spec = ClusterSpec(shard_dir=str(tmp_path / "shards"))
        q = TaskQueue(2, "cluster", max_retries=0, cluster=spec)
        store = CheckpointStore(str(tmp_path / "merged.db"))
        results, stats = q.run(tasks, _fail_on_data0, merge_store=store)
        assert stats.completed == 1 and stats.failed == 1
        (failure,) = [r for r in results if not r.ok]
        assert failure.worker in (1, 2)
        assert "planned failure" in failure.error
        ledger = store.failures()
        assert len(ledger) == 1 and ledger[0]["origin"].startswith("rank")
        store.close()

    def test_rank_kill_chaos_loses_zero_tasks(self, tmp_path):
        # Every task's first hosting rank dies abruptly (rate 1.0, no
        # flush, no ack); the once-only marker lets the requeued task
        # run to completion on the next rank.  Zero lost tasks is the
        # subsystem's headline guarantee.
        tasks = make_tasks(2, 2)
        chaos = ChaosPlan(
            rank_kill_rate=1.0, seed=11, state_dir=str(tmp_path / "chaos")
        )
        spec = ClusterSpec(shard_dir=str(tmp_path / "shards"))
        q = TaskQueue(2, "cluster", max_pool_rebuilds=16, cluster=spec)
        store = CheckpointStore(str(tmp_path / "merged.db"))
        results, stats = q.run(tasks, _echo_task, chaos=chaos, merge_store=store)
        assert stats.completed == len(tasks) and stats.failed == 0
        assert stats.rank_deaths >= 1
        assert stats.rank_restarts >= 1
        assert sorted(store.keys()) == sorted(t.key() for t in tasks)
        assert store.verify() == []
        store.close()


MPI_SKIP_REASON = None
if not mpi_available():
    MPI_SKIP_REASON = "mpi4py is not installed"
elif shutil.which("mpirun") is None:
    MPI_SKIP_REASON = "no mpirun launcher on PATH"

MPI_SMOKE = textwrap.dedent(
    """
    import sys

    from repro.bench import CheckpointStore, Task, TaskQueue
    from repro.bench.cluster import ClusterSpec

    def fn(task, worker):
        return {"w": worker}

    tasks = [
        Task(
            data_index=d,
            data_id=f"data/{d}",
            compressor_id="sz3",
            compressor_options={"pressio:abs": 1e-4},
            dataset_config={"entry:data_id": f"data/{d}"},
            replicate=0,
            nbytes=1,
        )
        for d in range(4)
    ]
    spec = ClusterSpec(backend="mpi", shard_dir=sys.argv[1])
    queue = TaskQueue(2, "cluster", cluster=spec)
    if spec.is_worker_rank:
        queue.run([], None)
    else:
        store = CheckpointStore(sys.argv[2])
        results, stats = queue.run(tasks, fn, merge_store=store)
        assert stats.completed == len(tasks), stats
        assert stats.shards_merged == 2, stats
        assert store.verify() == []
        print("MPI_SMOKE_OK")
    """
)


@pytest.mark.skipif(MPI_SKIP_REASON is not None, reason=MPI_SKIP_REASON or "")
class TestMpiBackend:
    def test_mpi_world_smoke(self, tmp_path):
        script = tmp_path / "mpi_smoke.py"
        script.write_text(MPI_SMOKE, encoding="utf-8")
        proc = subprocess.run(
            [
                "mpirun",
                "--oversubscribe",
                "-n",
                "3",
                sys.executable,
                str(script),
                str(tmp_path / "shards"),
                str(tmp_path / "merged.db"),
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "MPI_SMOKE_OK" in proc.stdout


class TestClusterCli:
    def test_report_on_empty_shard_dir(self, tmp_path, capsys):
        from repro.bench.cli import main

        assert main(["report", str(tmp_path)]) == 1
        assert "no shard" in capsys.readouterr().err

    def test_report_failures_show_origin(self, tmp_path, capsys):
        from repro.bench.cli import main

        with CheckpointStore(shard_path(str(tmp_path), 2)) as shard:
            shard.record_failure("deadbeef", "IOError: node fell over", status=1)
        rc = main(["report", str(tmp_path), "--failures"])
        captured = capsys.readouterr()
        assert rc == 1  # failures only, no observations to evaluate
        assert "on rank2" in captured.err
        assert "node fell over" in captured.err

    def test_sbatch_to_stdout(self, capsys):
        from repro.bench.cli import main

        assert main(["sbatch", "predict-bench collect", "--ntasks", "4"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("#!/bin/bash")
        assert "--engine cluster" in out

    def test_sbatch_to_file_is_executable(self, tmp_path):
        import os

        from repro.bench.cli import main

        target = tmp_path / "job.sh"
        assert main(["sbatch", "predict-bench collect", "--output", str(target)]) == 0
        assert target.read_text(encoding="utf-8").startswith("#!/bin/bash")
        assert os.access(str(target), os.X_OK)
