"""Lockset-sanitizer stress suites: the CI ``sanitizer`` job's payload.

Each suite runs a real concurrent workload with a
:class:`~repro.analysis.racewitness.LocksetWitness` threaded through the
``lock_witness=`` seam (TaskQueue, CheckpointStore, FeaturizationCache)
and the stores' ``# guarded-by:`` attributes instrumented, then asserts
two things at once:

* **race-free** — no witnessed attribute's candidate lockset emptied
  while shared-modified (the Eraser verdict);
* **deadlock-free** — the lock acquisition graph stayed acyclic (the
  PR-5 lock-order verdict; LocksetWitness extends LockOrderWitness).

A deliberately racy fixture proves the witness actually fires — a
sanitizer that cannot fail proves nothing.

``REPRO_RACE_WITNESS_REPORT=<path>`` dumps a merged JSON report of
every suite's locksets and races at session end (uploaded as a CI
artifact by the sanitizer job).
"""

import json
import os
import threading

import pytest

from repro.analysis import (
    DataRaceViolation,
    LocksetWitness,
    guarded_attributes,
)
from repro.analysis.racewitness import merge_reports
from repro.bench import CheckpointStore, FaultInjector, Task, TaskQueue
from repro.serve.featcache import FeaturizationCache

#: Collected per-suite witness reports, dumped at session end.
_REPORTS: list[dict] = []


def _register(label: str, witness: LocksetWitness) -> None:
    report = witness.report()
    report["label"] = label
    _REPORTS.append(report)


@pytest.fixture(scope="session", autouse=True)
def _dump_reports():
    yield
    path = os.environ.get("REPRO_RACE_WITNESS_REPORT")
    if path:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(merge_reports(_REPORTS), fh, indent=2, sort_keys=True)


def make_tasks(n_data=4, per_data=3):
    tasks = []
    for d in range(n_data):
        for k in range(per_data):
            tasks.append(
                Task(
                    data_index=d,
                    data_id=f"data/{d}",
                    compressor_id="sz3",
                    compressor_options={"pressio:abs": 10.0 ** -(k + 2)},
                    dataset_config={"entry:data_id": f"data/{d}"},
                    replicate=0,
                    nbytes=1 << 20,
                )
            )
    return tasks


class RacyCounter:
    """Deliberate victim: the annotation says ``_lock``, one path forgets."""

    def __init__(self, lock) -> None:
        self._lock = lock
        self.total = 0  # guarded-by: _lock

    def add_locked(self, k: int) -> None:
        with self._lock:
            self.total += k

    def add_racy(self, k: int) -> None:
        self.total += k  # repro-lint: disable=RL101  # the deliberate race under test


class TestDeliberateRace:
    """The witness must fire on a planted race and explain it."""

    def test_auto_discovery_reads_guarded_by_comments(self):
        assert guarded_attributes(RacyCounter) == {"total": "_lock"}

    def test_unlocked_writer_empties_the_lockset(self):
        witness = LocksetWitness()
        counter = RacyCounter(witness.wrap(name="counter.lock"))
        witness.instrument(counter, name="counter")
        # Seed a main-thread access so the workers are never the first
        # (and possibly only) thread Eraser sees: without this, a racy
        # thread that finishes before the locked one starts would stay
        # in the exclusive phase and the race would escape.
        counter.add_locked(1)

        def worker(racy: bool) -> None:
            for _ in range(200):
                (counter.add_racy if racy else counter.add_locked)(1)

        threads = [
            threading.Thread(target=worker, args=(i == 1,), name=f"racer-{i}")
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        races = witness.races()
        assert races, "planted race was not detected"
        assert races[0].var == "counter.total"
        assert races[0].state == "shared-modified"
        with pytest.raises(DataRaceViolation):
            witness.assert_race_free()
        report = witness.report()
        assert report["races"], "race missing from the JSON report"
        assert report["variables"]["counter.total"]["lockset"] == []

    def test_locked_writers_stay_quiet(self):
        witness = LocksetWitness()
        counter = RacyCounter(witness.wrap(name="counter.lock"))
        witness.instrument(counter, name="counter")
        threads = [
            threading.Thread(
                target=lambda: [counter.add_locked(1) for _ in range(200)]
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        witness.assert_race_free()
        with witness.paused():
            assert counter.total == 800
        witness.assert_race_free()
        assert witness.report()["variables"]["counter.total"]["lockset"] == [
            "counter.lock"
        ]

    def test_check_on_access_raises_at_the_racy_site(self):
        witness = LocksetWitness(check_on_access=True)
        counter = RacyCounter(witness.wrap(name="counter.lock"))
        witness.instrument(counter, name="counter")
        counter.add_locked(1)  # main thread: exclusive phase

        failures: list[BaseException] = []

        def racy() -> None:
            try:
                for _ in range(100):
                    counter.add_racy(1)
            except DataRaceViolation as exc:
                failures.append(exc)

        t = threading.Thread(target=racy)
        t.start()
        t.join()
        assert failures, "check_on_access did not raise in the racy thread"


class TestWitnessedCheckpointStore:
    """Hammer puts/failures/flushes from threads plus the flush timer."""

    def test_store_stress_is_race_free(self, tmp_path):
        witness = LocksetWitness()
        store = CheckpointStore(
            str(tmp_path / "ck.db"),
            flush_every=8,
            flush_interval=0.02,
            lock_witness=witness,
        )
        witness.instrument(store, name="store")
        try:

            def worker(wid: int) -> None:
                for i in range(60):
                    key = f"w{wid}-k{i}"
                    if i % 7 == 3:
                        store.record_failure(key, "boom", status=1)
                    else:
                        store.put(key, {"v": i, "w": wid})
                    if i % 13 == 0:
                        store.flush()

            threads = [
                threading.Thread(target=worker, args=(w,), name=f"store-{w}")
                for w in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            store.flush()
            witness.assert_race_free()
            witness.assert_acyclic()
            with witness.paused():
                assert store.commit_count > 0
                assert len(store.query()) == 4 * 60 - 4 * 9  # failures excluded
        finally:
            _register("checkpoint-stress", witness)
            with witness.paused():
                store.close()

    def test_instrument_watches_the_annotated_attrs(self):
        assert set(guarded_attributes(CheckpointStore)) == {
            "_buffer",
            "_last_flush",
            "commit_count",
        }


class TestWitnessedTaskQueue:
    """The PR-5 acyclic-order suite, upgraded to also prove locksets."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_queue_with_checkpoint_sink_is_race_free(self, workers, tmp_path):
        witness = LocksetWitness()
        store = CheckpointStore(
            str(tmp_path / "ck.db"), flush_every=4, lock_witness=witness
        )
        witness.instrument(store, name="store")
        try:
            tasks = make_tasks(n_data=6, per_data=4)
            fn = FaultInjector(lambda t, w: {"ok": 1}, fail_first_attempt_every=4)

            def sink(result):
                if result.ok:
                    store.put(result.task.key(), result.payload)

            results, stats = TaskQueue(
                workers, "thread", max_retries=3, lock_witness=witness
            ).run(tasks, fn, on_result=sink)
            store.flush()
            assert stats.failed == 0
            assert stats.completed == len(tasks)
            witness.assert_race_free()
            witness.assert_acyclic()
            # The sink runs under the queue condvar and takes the store
            # lock: the edge exists, and only in that direction.
            assert ("taskqueue.cond", "checkpoint.lock") in witness.edges()
            assert ("checkpoint.lock", "taskqueue.cond") not in witness.edges()
            with witness.paused():
                assert len(store.query()) == len(tasks)
        finally:
            _register(f"taskqueue-stress-{workers}w", witness)
            with witness.paused():
                store.close()


class TestWitnessedFeatCache:
    """Concurrent get/put/stats over the shared featurization cache."""

    def test_featcache_stress_is_race_free(self):
        witness = LocksetWitness()
        # capacity > key population: the second pass over the 80 keys is
        # guaranteed L1 hits, so the hit-path counters are exercised.
        cache = FeaturizationCache(capacity=128, lock_witness=witness)
        witness.instrument(cache, name="featcache")

        def worker(wid: int) -> None:
            for i in range(150):
                key = f"featrow-{i % 80}"
                hit = cache.get(key)
                if hit is None:
                    cache.put(
                        key, {"v": i, "w": wid}, cost_s=0.001, source_nbytes=64
                    )
                if i % 29 == 0:
                    cache.stats()

        threads = [
            threading.Thread(target=worker, args=(w,), name=f"cache-{w}")
            for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        witness.assert_race_free()
        witness.assert_acyclic()
        with witness.paused():
            stats = cache.stats()
        assert stats["stores"] > 0
        assert stats["l1_hits"] > 0
        _register("featcache-stress", witness)

    def test_instrument_watches_the_annotated_attrs(self):
        assert set(guarded_attributes(FeaturizationCache)) == {
            "_l1",
            "_signatures",
            "counters",
        }
