"""Tests for RLE, LZ backends, and entropy math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CorruptStreamError, OptionError
from repro.encoding import (
    coding_gain,
    empirical_entropy,
    find_runs,
    huffman_expected_length,
    longest_run,
    lossless_compress,
    lossless_decompress,
    quantized_entropy,
    rle_decode,
    rle_encode,
    shannon_entropy,
    zero_run_ratio,
)
from repro.encoding.entropy import cross_entropy_bits, histogram_probabilities


class TestRuns:
    def test_find_runs_basic(self):
        starts, lengths, values = find_runs(np.array([1, 1, 2, 2, 2, 3]))
        assert starts.tolist() == [0, 2, 5]
        assert lengths.tolist() == [2, 3, 1]
        assert values.tolist() == [1, 2, 3]

    def test_find_runs_empty(self):
        starts, lengths, values = find_runs(np.array([], dtype=np.int64))
        assert starts.size == lengths.size == values.size == 0

    def test_longest_run(self):
        assert longest_run(np.array([0, 0, 0, 1, 1])) == 3
        assert longest_run(np.array([], dtype=np.int64)) == 0

    @given(st.lists(st.integers(min_value=-3, max_value=3), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_rle_roundtrip(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert np.array_equal(rle_decode(rle_encode(arr)), arr)

    def test_rle_truncated_raises(self):
        stream = rle_encode(np.array([1, 1, 2]))
        with pytest.raises(CorruptStreamError):
            rle_decode(stream[:10])

    def test_zero_run_ratio(self):
        arr = np.array([0.0, 0.0, 1.0, 0.0])
        assert zero_run_ratio(arr) == pytest.approx(0.75)
        assert zero_run_ratio(np.array([0.001, -0.001]), atol=0.01) == 1.0


class TestLossless:
    @pytest.mark.parametrize("backend", ["zlib", "lz77"])
    def test_roundtrip(self, backend):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 3, 4000).astype(np.uint8).tobytes()
        stream = lossless_compress(data, backend=backend)
        assert lossless_decompress(stream) == data
        assert len(stream) < len(data)

    @pytest.mark.parametrize("backend", ["zlib", "lz77"])
    def test_incompressible_stored_raw(self, backend):
        data = np.random.default_rng(1).bytes(512)
        stream = lossless_compress(data, backend=backend)
        assert lossless_decompress(stream) == data
        assert len(stream) <= len(data) + 16

    def test_empty(self):
        assert lossless_decompress(lossless_compress(b"")) == b""

    def test_overlapping_lz77_matches(self):
        data = b"ab" * 500  # classic overlapping-copy pattern
        stream = lossless_compress(data, backend="lz77")
        assert lossless_decompress(stream) == data
        assert len(stream) < 100

    def test_unknown_backend(self):
        with pytest.raises(OptionError):
            lossless_compress(b"x", backend="snappy")

    def test_corrupt_stream(self):
        with pytest.raises(CorruptStreamError):
            lossless_decompress(b"\x07" + b"\x00" * 16)

    @given(st.binary(max_size=2000))
    @settings(max_examples=40, deadline=None)
    def test_lz77_roundtrip_property(self, data):
        assert lossless_decompress(lossless_compress(data, backend="lz77")) == data

    def test_accepts_ndarray(self):
        arr = np.arange(100, dtype=np.int32)
        stream = lossless_compress(arr)
        assert lossless_decompress(stream) == arr.tobytes()


class TestEntropy:
    def test_shannon_uniform(self):
        assert shannon_entropy(np.full(8, 1 / 8)) == pytest.approx(3.0)

    def test_shannon_degenerate(self):
        assert shannon_entropy(np.array([1.0])) == 0.0
        assert shannon_entropy(np.array([])) == 0.0

    def test_empirical_entropy(self):
        assert empirical_entropy(np.array([1, 1, 2, 2])) == pytest.approx(1.0)
        assert empirical_entropy(np.array([5] * 10)) == 0.0

    def test_quantized_entropy_decreases_with_bound(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal(5000)
        fine = quantized_entropy(data, 1e-4)
        coarse = quantized_entropy(data, 1e-1)
        assert coarse < fine

    def test_quantized_entropy_requires_positive_bound(self):
        with pytest.raises(ValueError):
            quantized_entropy(np.zeros(4), 0.0)

    def test_huffman_expected_length_bounds(self):
        rng = np.random.default_rng(3)
        counts = rng.integers(1, 100, 20)
        p = counts / counts.sum()
        est = huffman_expected_length(p)
        h = shannon_entropy(p)
        assert h <= est <= h + 1.0

    def test_huffman_expected_length_degenerate(self):
        assert huffman_expected_length(np.array([1.0])) == 1.0
        assert huffman_expected_length(np.array([])) == 0.0

    def test_coding_gain_higher_for_structured(self):
        rng = np.random.default_rng(4)
        flat_noise = rng.standard_normal(4096)
        # Structured: variance alternates block to block.
        structured = flat_noise * np.repeat([0.01, 10.0], 2048)
        assert coding_gain(structured) > coding_gain(flat_noise)

    def test_coding_gain_empty(self):
        assert coding_gain(np.array([])) == 1.0

    def test_cross_entropy_bits(self):
        counts = np.array([4, 4])
        probs = np.array([0.5, 0.5])
        assert cross_entropy_bits(counts, probs) == pytest.approx(8.0)

    def test_histogram_probabilities_sums_to_one(self):
        p = histogram_probabilities(np.array([1, 2, 2, 3, 3, 3]))
        assert p.sum() == pytest.approx(1.0)
        assert p.tolist() == pytest.approx([1 / 6, 2 / 6, 3 / 6])
