"""The self-healing rollover pipeline: supervised retries, journaled
publish under trainer kills, at-rest corruption healing, refresh loss,
crash-loop cap — the tentpole's unit-level acceptance."""

from __future__ import annotations

import pytest

from repro.bench import ChaosPlan, CheckpointStore, ExperimentRunner, RetryPolicy, TaskQueue
from repro.dataset import HurricaneDataset
from repro.predict.scheme import get_scheme
from repro.serve import (
    ContinuousLearner,
    DriftConfig,
    ModelRegistry,
    PredictionClient,
    PredictionServer,
    RolloverFailedError,
    ServerThread,
)

FAST_DRIFT = DriftConfig(window=8, min_observations=4, calibration=4, hysteresis=2)


class LoopEnv:
    """A seeded campaign plus everything a learner needs around it."""

    def __init__(self, tmp_path):
        self.store = CheckpointStore(str(tmp_path / "ck.db"))
        self.registry = ModelRegistry(str(tmp_path / "reg"))
        seed_runner = self.runner_factory(0)
        self.observations = seed_runner.collect().observations
        receipts = seed_runner.publish(self.registry, self.observations, verify_n=2)
        seed_runner.close()
        assert len(receipts) == 1
        self.key = receipts[0].key
        self.seed_version = receipts[0].version
        self.row = dict(self.observations[0])

    def runner_factory(self, round_no):
        dataset = HurricaneDataset(
            shape=(8, 8, 4), timesteps=2 + round_no, fields=["P"]
        )
        return ExperimentRunner(
            dataset,
            compressors=["sz3"],
            bounds=[1e-3],
            schemes=[
                get_scheme(
                    "rahman2023", n_estimators=3, max_depth=3, augment_factor=1.0
                )
            ],
            store=self.store,
            queue=TaskQueue(1, "serial"),
            n_folds=2,
        )

    def learner(self, **kwargs):
        kwargs.setdefault(
            "retry_policy", RetryPolicy(max_retries=16, base_delay=0.0, seed=0)
        )
        kwargs.setdefault("max_stage_attempts", 16)
        kwargs.setdefault("verify_n", 2)
        return ContinuousLearner(self.registry, self.runner_factory, **kwargs)

    def close(self):
        self.store.close()


@pytest.fixture
def env(tmp_path):
    e = LoopEnv(tmp_path)
    yield e
    e.close()


class TestRolloverHappyPath:
    def test_single_attempt_publishes_next_version(self, env):
        report = env.learner().rollover(1)
        assert report.attempts == 1
        assert report.published == {env.key: "v0002"}
        assert report.stage_attempts == {
            "recover": 1,
            "collect": 1,
            "publish": 1,
            "verify": 1,
            "refresh": 1,
        }
        assert env.registry.latest(env.key) == "v0002"
        assert env.registry.verify() == []

    def test_recollect_is_incremental_not_restart(self, env):
        """Round N+1 reuses round N's checkpointed rows; only the new
        timestep's tasks actually run."""
        env.learner().rollover(1)
        rows_before = len(env.store.query())
        env.learner().rollover(2)
        rows_after = len(env.store.query())
        # round 2 added exactly one timestep of new tasks, not a re-run
        assert rows_after > rows_before
        assert rows_after - rows_before <= rows_before

    def test_consecutive_rollovers_monotonic_versions(self, env):
        learner = env.learner()
        versions = [learner.rollover(n).published[env.key] for n in (1, 2, 3)]
        assert versions == ["v0002", "v0003", "v0004"]
        assert env.registry.verify() == []


class TestRolloverUnderChaos:
    def test_trainer_kill_at_every_stage_converges(self, env):
        chaos = ChaosPlan.from_spec("trainer_kill:1.0", seed=1)
        report = env.learner(chaos=chaos).rollover(1)
        # killed at collect + all four publish fault points, then done
        assert chaos.injected_counts()["trainer_kill"] == 5
        assert report.attempts >= 5
        assert env.registry.latest(env.key) > env.seed_version
        assert env.registry.verify() == []
        # collect ran once more after its kill, then was memoised
        assert report.stage_attempts["collect"] == 2

    def test_publish_corrupt_blob_is_never_served(self, env):
        chaos = ChaosPlan.from_spec("publish_corrupt:1.0", seed=2)
        report = env.learner(chaos=chaos).rollover(1)
        assert chaos.injected_counts()["publish_corrupt"] == 1
        # the corrupted v0002 was quarantined and republished as v0003
        assert report.published == {env.key: "v0003"}
        assert env.registry.versions(env.key) == ["v0001", "v0003"]
        assert env.registry.load(env.key).version == "v0003"
        assert env.registry.verify() == []

    def test_crash_loop_cap_surfaces_instead_of_spinning(self, env):
        chaos = ChaosPlan.from_spec("trainer_kill:1.0", seed=3)
        learner = env.learner(chaos=chaos, max_stage_attempts=3)
        with pytest.raises(RolloverFailedError, match="crash-loop cap"):
            learner.rollover(1)
        # the failed rollover still left a recoverable registry
        env.registry.recover()
        assert env.registry.verify() == []

    def test_rollover_after_failed_rollover_succeeds(self, env):
        chaos = ChaosPlan.from_spec("trainer_kill:1.0", seed=4)
        with pytest.raises(RolloverFailedError):
            env.learner(chaos=chaos, max_stage_attempts=2).rollover(1)
        # same chaos plan: its sites are burned, so the retry sails
        report = env.learner(chaos=chaos).rollover(1)
        assert env.registry.latest(env.key) == report.published[env.key]
        assert env.registry.verify() == []


class TestRolloverAgainstLiveServer:
    def test_refresh_drop_is_retried_until_server_flips(self, env):
        server = PredictionServer(env.registry, drift_config=FAST_DRIFT)
        with ServerThread(server) as thread:
            host, port = thread.address
            chaos = ChaosPlan.from_spec("refresh_drop:1.0", seed=5)
            learner = env.learner(chaos=chaos, servers=[(host, port)])
            report = learner.rollover(1)
            assert chaos.injected_counts()["refresh_drop"] == 1
            assert report.attempts == 2  # dropped once, then delivered
            addr = f"{host}:{port}"
            assert report.refreshed[addr][env.key] == "v0002"
            with PredictionClient(host, port) as client:
                assert (
                    client.predict(env.key, results=env.row)["version"] == "v0002"
                )

    def test_run_polls_drift_and_rolls_over(self, env):
        server = PredictionServer(env.registry, drift_config=FAST_DRIFT)
        with ServerThread(server) as thread:
            host, port = thread.address
            learner = env.learner(
                servers=[(host, port)],
                drift_config={
                    "window": 8,
                    "min_observations": 4,
                    "calibration": 4,
                    "hysteresis": 2,
                },
            )
            with PredictionClient(host, port) as client:
                resp = client.predict(env.key, results=env.row)
                assert learner.fired_keys() == {}
                for _ in range(60):
                    snap = client.observe(
                        env.key,
                        resp["prediction"],
                        resp["prediction"] * 3.0,
                        version=resp["version"],
                    )
                    if snap["fired"]:
                        break
                assert env.key in learner.fired_keys()
                reports = learner.run(1, poll_interval=0.0, max_polls=5)
                assert len(reports) == 1
                # the server flipped and the monitor re-armed: not stale
                assert learner.fired_keys() == {}
                assert (
                    client.predict(env.key, results=env.row)["version"]
                    == reports[0].published[env.key]
                )
