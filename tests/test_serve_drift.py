"""Drift detection: conformal radius sharing, hysteresis, latching,
re-arm on rollover — the trigger side of the continuous-learning loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mlkit.conformal import ConformalRegressor, conformal_radius
from repro.serve import DriftConfig, DriftMonitor, ResidualLedger

# Small enough to fire fast in tests, but with a calibration set large
# enough that calm gaussian traffic stays inside the coverage budget.
SMALL = DriftConfig(
    window=8,
    min_observations=4,
    calibration=16,
    medape_threshold=25.0,
    coverage_alpha=0.1,
    coverage_slack=5.0,
    hysteresis=2,
)


def feed_calm(monitor, n, scale=0.001, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        monitor.observe(1.0, 1.0 + scale * float(rng.standard_normal()))


class TestDriftConfig:
    def test_validation_rejects_nonsense(self):
        with pytest.raises(ValueError):
            DriftConfig(window=0)
        with pytest.raises(ValueError):
            DriftConfig(calibration=0)
        with pytest.raises(ValueError):
            DriftConfig(coverage_alpha=1.5)
        with pytest.raises(ValueError):
            DriftConfig(hysteresis=0)

    def test_from_mapping_rejects_unknown_fields(self):
        cfg = DriftConfig.from_mapping({"window": 16, "hysteresis": 5})
        assert cfg.window == 16 and cfg.hysteresis == 5
        with pytest.raises(ValueError, match="unknown drift config"):
            DriftConfig.from_mapping({"windoww": 16})
        with pytest.raises(ValueError):
            DriftConfig.from_mapping(["not", "a", "dict"])


class TestConformalRadius:
    def test_matches_offline_conformal_regressor(self):
        """The online radius is the exact quantile the offline
        ConformalRegressor computes — one calibration rule, two homes."""
        rng = np.random.default_rng(7)
        y = rng.standard_normal(64)  # the residuals, via a zero predictor

        class _Zero:
            def clone(self):
                return self

            def fit(self, X, yy):
                return self

            def predict(self, X):
                return np.zeros(len(X))

        reg = ConformalRegressor(_Zero(), alpha=0.1, random_state=0)
        reg.fit(np.zeros((64, 1)), y)
        # replay the regressor's own calibration split
        perm = np.random.default_rng(0).permutation(64)
        cal = perm[: reg.n_calibration_]
        assert reg.radius_ == pytest.approx(
            conformal_radius(np.abs(y[cal]), 0.1)
        )

    def test_empty_residuals_rejected(self):
        with pytest.raises(ValueError):
            conformal_radius([], 0.1)

    def test_radius_covers_nominal_fraction(self):
        rng = np.random.default_rng(0)
        resid = rng.standard_normal(500)
        radius = conformal_radius(resid, 0.1)
        covered = np.mean(np.abs(resid) <= radius)
        assert covered >= 0.9


class TestResidualLedger:
    def test_calibration_fills_before_window(self):
        ledger = ResidualLedger(SMALL)
        for i in range(SMALL.calibration):
            assert ledger.add(1.0, 1.1) is False
        assert ledger.calibrated
        assert ledger.add(1.0, 1.1) is True
        assert len(ledger.window) == 1

    def test_window_is_bounded(self):
        ledger = ResidualLedger(SMALL)
        for _ in range(SMALL.calibration + 50):
            ledger.add(1.0, 1.0)
        assert len(ledger.window) == SMALL.window
        assert ledger.total == SMALL.calibration + 50

    def test_medape_and_miss_rate(self):
        ledger = ResidualLedger(SMALL)
        for _ in range(SMALL.calibration):
            ledger.add(1.0, 1.0)
        for _ in range(4):
            ledger.add(1.0, 2.0)  # 50% APE, residual 1.0
        for _ in range(4):
            ledger.add(1.0, 1.0)  # exact
        assert ledger.medape() == pytest.approx(25.0)
        assert ledger.miss_rate(0.5) == pytest.approx(0.5)
        assert ledger.miss_rate(2.0) == 0.0


class TestDriftMonitor:
    def test_calm_traffic_never_fires(self):
        monitor = DriftMonitor(DriftConfig())
        feed_calm(monitor, 500, scale=0.001)
        assert not monitor.fired
        assert monitor.breach_streak == 0

    def test_fires_on_sustained_medape_breach_with_hysteresis(self):
        monitor = DriftMonitor(SMALL)
        feed_calm(monitor, SMALL.calibration + SMALL.window)
        assert not monitor.fired
        fired_after = None
        for i in range(1, 40):
            if monitor.observe(1.0, 2.0):  # 50% APE
                fired_after = i
                break
        assert fired_after is not None
        # hysteresis: a single breaching evaluation is never enough
        assert fired_after >= SMALL.hysteresis
        assert "medape" in monitor.last_reason

    def test_single_outlier_does_not_fire(self):
        cfg = DriftConfig(
            window=16, min_observations=8, calibration=8, hysteresis=3
        )
        monitor = DriftMonitor(cfg)
        feed_calm(monitor, cfg.calibration + cfg.window)
        monitor.observe(1.0, 50.0)  # one pathological field
        feed_calm(monitor, 30, seed=1)
        assert not monitor.fired

    def test_fires_on_coverage_breach_alone(self):
        # residuals stay tiny in APE terms but blow through the
        # calibrated radius: only the conformal detector can see it
        cfg = DriftConfig(
            window=8,
            min_observations=4,
            calibration=4,
            medape_threshold=1e9,  # disable the MedAPE detector
            coverage_alpha=0.1,
            coverage_slack=2.0,
            hysteresis=2,
        )
        monitor = DriftMonitor(cfg)
        for _ in range(cfg.calibration):
            monitor.observe(1000.0, 1000.0 + 1e-6)
        for _ in range(40):
            if monitor.observe(1000.0, 1000.1):  # tiny APE, huge vs radius
                break
        assert monitor.fired
        assert "coverage" in monitor.last_reason

    def test_latches_until_reset_and_rearm_recalibrates(self):
        monitor = DriftMonitor(SMALL)
        feed_calm(monitor, SMALL.calibration + SMALL.window)
        for _ in range(40):
            monitor.observe(1.0, 3.0)
        assert monitor.fired
        old_radius = monitor.radius
        # latched: calm traffic does not clear it
        feed_calm(monitor, 50, seed=2)
        assert monitor.fired
        assert monitor.fires == 1
        monitor.reset("v0002")
        assert not monitor.fired
        assert monitor.version == "v0002"
        assert monitor.radius is None  # calibration restarts
        feed_calm(monitor, SMALL.calibration + 10, seed=3)
        assert monitor.radius is not None
        assert monitor.radius != old_radius or monitor.radius >= 0.0
        assert not monitor.fired

    def test_fired_version_records_the_drifted_generation(self):
        monitor = DriftMonitor(SMALL)
        monitor.reset("v0001")
        feed_calm(monitor, SMALL.calibration + SMALL.window)
        for _ in range(40):
            monitor.observe(1.0, 3.0)
        assert monitor.fired_version == "v0001"

    def test_snapshot_is_json_safe_and_complete(self):
        import json

        monitor = DriftMonitor(SMALL)
        monitor.reset("v0001")
        feed_calm(monitor, SMALL.calibration + SMALL.window)
        snap = monitor.snapshot()
        json.dumps(snap)
        for field in (
            "version",
            "fired",
            "fired_version",
            "fires",
            "observations",
            "windowed",
            "calibrated",
            "radius",
            "medape_pct",
            "miss_rate",
            "breach_streak",
            "reason",
        ):
            assert field in snap
        assert snap["version"] == "v0001"
        assert snap["calibrated"] is True
