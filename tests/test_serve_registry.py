"""Registry lifecycle: exact codec, versioned publish, latest pointer,
corrupt-blob quarantine with fallback."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.compressor import make_compressor
from repro.predict.scheme import get_scheme
from repro.serve import (
    ModelIntegrityError,
    ModelNotFoundError,
    ModelRegistry,
    StateSerializationError,
    decode_state,
    encode_state,
    registry_key,
    scheme_params,
    state_checksum,
)
from repro.serve import PUBLISH_FAULT_POINTS
from repro.serve.registry import LATEST_NAME, STATE_NAME

RAHMAN_KWARGS = dict(n_estimators=4, max_depth=3, augment_factor=1.0)

FEATURES = [
    "stat:std",
    "stat:value_range",
    "stat:skewness",
    "stat:kurtosis",
    "sparsity:zero_ratio",
    "spatial:correlation",
    "spatial:smoothness",
    "spatial:coding_gain",
    "config:log_abs_bound",
]


def make_rows(n=24, seed=0):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n):
        row = {k: float(v) for k, v in zip(FEATURES, rng.random(len(FEATURES)) + 0.1)}
        rows.append(row)
    targets = rng.random(n) * 20.0 + 1.0
    return rows, targets


def fitted_predictor(scheme=None):
    scheme = scheme or get_scheme("rahman2023", **RAHMAN_KWARGS)
    comp = make_compressor("sz3", pressio__abs=1e-4)
    predictor = scheme.get_predictor(comp)
    rows, y = make_rows()
    predictor.fit(rows, y)
    return scheme, predictor, rows


class TestCodec:
    def test_array_roundtrip_preserves_dtype_shape_order(self):
        cases = [
            np.arange(12, dtype=np.float32).reshape(3, 4),
            np.asfortranarray(np.arange(12, dtype=np.float64).reshape(3, 4)),
            np.array([1, 2, 3], dtype=np.int16),
            np.zeros((0,), dtype=np.float32),
        ]
        out = decode_state(encode_state({"arrays": cases}))["arrays"]
        for want, got in zip(cases, out):
            assert got.dtype == want.dtype
            assert got.shape == want.shape
            assert np.array_equal(got, want)
        # restored arrays are writable (frombuffer views are not)
        out[0][0, 0] = 99.0

    def test_scalar_tuple_bytes_roundtrip(self):
        state = {
            "f32": np.float32(1.5),
            "i64": np.int64(-7),
            "hidden": (32, 16),
            "blob": b"\x00\x01\xff",
            "nested": {"t": ((1.0, 2.0), "x")},
            "plain": [1, 2.5, "s", None, True],
        }
        out = decode_state(encode_state(state))
        assert out["f32"] == np.float32(1.5) and out["f32"].dtype == np.float32
        assert out["i64"] == np.int64(-7) and out["i64"].dtype == np.int64
        assert out["hidden"] == (32, 16) and isinstance(out["hidden"], tuple)
        assert out["blob"] == b"\x00\x01\xff"
        assert out["nested"]["t"] == ((1.0, 2.0), "x")
        assert isinstance(out["nested"]["t"][0], tuple)
        assert out["plain"] == [1, 2.5, "s", None, True]

    def test_unserialisable_value_names_path(self):
        with pytest.raises(StateSerializationError, match=r"state\.inner\.bad"):
            encode_state({"inner": {"bad": lambda r: 1.0}})

    def test_non_string_key_rejected(self):
        with pytest.raises(StateSerializationError, match="not str"):
            encode_state({"outer": {3: "x"}})

    def test_checksum_detects_tamper(self):
        blob = encode_state({"a": np.arange(4.0)})
        assert state_checksum(blob) != state_checksum(blob.replace("4", "5", 1))


class TestRegistryPublish:
    def test_publish_load_roundtrip_exact(self, tmp_path):
        registry = ModelRegistry(str(tmp_path / "reg"))
        scheme, predictor, rows = fitted_predictor()
        receipt = registry.publish(
            scheme, "sz3", {"pressio:abs": 1e-4}, predictor, verify_rows=rows[:6]
        )
        assert receipt.version == "v0001"
        loaded = registry.load(receipt.key)
        assert loaded.version == "v0001"
        want = predictor.predict_many(rows)
        got = loaded.predictor.predict_many(rows)
        assert np.array_equal(want, got)
        assert loaded.target_key == scheme.target_key

    def test_latest_pointer_flips_on_republish(self, tmp_path):
        registry = ModelRegistry(str(tmp_path / "reg"))
        scheme, predictor, rows = fitted_predictor()
        r1 = registry.publish(scheme, "sz3", {"pressio:abs": 1e-4}, predictor)
        # retrain on different rows -> a genuinely different v0002
        rows2, y2 = make_rows(seed=99)
        predictor.fit(rows2, y2)
        r2 = registry.publish(scheme, "sz3", {"pressio:abs": 1e-4}, predictor)
        assert r1.key == r2.key
        assert r2.version == "v0002"
        assert registry.latest(r1.key) == "v0002"
        assert registry.versions(r1.key) == ["v0001", "v0002"]
        assert registry.load(r1.key).version == "v0002"
        # pinned loads still reach the old version
        assert registry.load(r1.key, "v0001").version == "v0001"

    def test_key_is_reproducible_from_configuration(self, tmp_path):
        registry = ModelRegistry(str(tmp_path / "reg"))
        scheme, predictor, _ = fitted_predictor()
        receipt = registry.publish(scheme, "sz3", {"pressio:abs": 1e-4}, predictor)
        derived = registry_key(
            scheme.id, "sz3", {"pressio:abs": 1e-4}, scheme_params(scheme)
        )
        assert derived == receipt.key
        # a different bound is a different model
        assert derived != registry_key(
            scheme.id, "sz3", {"pressio:abs": 1e-6}, scheme_params(scheme)
        )

    def test_unfitted_predictor_refused(self, tmp_path):
        registry = ModelRegistry(str(tmp_path / "reg"))
        scheme = get_scheme("rahman2023", **RAHMAN_KWARGS)
        predictor = scheme.get_predictor(make_compressor("sz3", pressio__abs=1e-4))
        with pytest.raises(StateSerializationError, match="unfitted"):
            registry.publish(scheme, "sz3", {"pressio:abs": 1e-4}, predictor)

    def test_untrained_scheme_publishes_empty_state(self, tmp_path):
        registry = ModelRegistry(str(tmp_path / "reg"))
        scheme = get_scheme("khan2023")
        comp = make_compressor("sz3", pressio__abs=1e-4)
        predictor = scheme.get_predictor(comp)
        receipt = registry.publish(scheme, "sz3", {"pressio:abs": 1e-4}, predictor)
        loaded = registry.load(receipt.key)
        assert loaded.scheme.id == "khan2023"

    def test_missing_key_raises_not_found(self, tmp_path):
        registry = ModelRegistry(str(tmp_path / "reg"))
        with pytest.raises(ModelNotFoundError):
            registry.load("no-such-key")


class TestQuarantine:
    def _publish_two(self, tmp_path):
        registry = ModelRegistry(str(tmp_path / "reg"))
        scheme, predictor, rows = fitted_predictor()
        registry.publish(scheme, "sz3", {"pressio:abs": 1e-4}, predictor)
        good = predictor.predict_many(rows)
        rows2, y2 = make_rows(seed=5)
        predictor.fit(rows2, y2)
        r2 = registry.publish(scheme, "sz3", {"pressio:abs": 1e-4}, predictor)
        return registry, r2.key, rows, good

    def test_corrupt_latest_falls_back_to_prior_version(self, tmp_path):
        registry, key, rows, v1_preds = self._publish_two(tmp_path)
        state_path = os.path.join(registry.root, key, "v0002", STATE_NAME)
        with open(state_path, "r+") as fh:
            blob = fh.read()
            fh.seek(0)
            fh.write(blob.replace("0", "1", 1))
        loaded = registry.load(key)
        assert loaded.version == "v0001"
        assert np.array_equal(loaded.predictor.predict_many(rows), v1_preds)
        # the corrupt version was moved aside and LATEST retargeted
        assert registry.versions(key) == ["v0001"]
        assert registry.latest(key) == "v0001"
        names = os.listdir(os.path.join(registry.root, key))
        assert any(n.startswith("v0002.quarantined") for n in names)

    def test_pinned_corrupt_version_refuses_without_fallback(self, tmp_path):
        registry, key, _, _ = self._publish_two(tmp_path)
        state_path = os.path.join(registry.root, key, "v0002", STATE_NAME)
        with open(state_path, "r+") as fh:
            blob = fh.read()
            fh.seek(0)
            fh.write(blob.replace("0", "1", 1))
        with pytest.raises(ModelIntegrityError, match="checksum"):
            registry.load(key, "v0002")
        # pinned probing must not quarantine: the blob stays for forensics
        assert "v0002" in registry.versions(key)

    def test_all_versions_corrupt_raises_integrity_error(self, tmp_path):
        registry, key, _, _ = self._publish_two(tmp_path)
        for version in registry.versions(key):
            path = os.path.join(registry.root, key, version, STATE_NAME)
            with open(path, "r+") as fh:
                blob = fh.read()
                fh.seek(0)
                fh.write(blob.replace("0", "1", 1))
        with pytest.raises(ModelIntegrityError, match="integrity"):
            registry.load(key)

    def test_torn_latest_pointer_ignored(self, tmp_path):
        registry, key, _, _ = self._publish_two(tmp_path)
        with open(os.path.join(registry.root, key, LATEST_NAME), "w") as fh:
            fh.write("v9;garbage")
        # invalid pointer -> newest intact version served
        assert registry.load(key).version == "v0002"

    def test_manifest_json_is_valid(self, tmp_path):
        registry, key, _, _ = self._publish_two(tmp_path)
        with open(os.path.join(registry.root, key, "v0002", "MANIFEST.json")) as fh:
            manifest = json.load(fh)
        assert manifest["scheme"] == "rahman2023"
        assert manifest["compressor"] == "sz3"
        assert manifest["version"] == "v0002"

    def test_version_numbers_never_reused_after_quarantine(self, tmp_path):
        """A quarantined v0002 keeps its number: the next publish is
        v0003, so an old cached "v0002" can never alias a new blob."""
        registry, key, _, _ = self._publish_two(tmp_path)
        registry.damage_version(key, "v0002")
        assert registry.load(key).version == "v0001"  # quarantines v0002
        scheme, predictor, rows = fitted_predictor()
        r3 = registry.publish(scheme, "sz3", {"pressio:abs": 1e-4}, predictor)
        assert r3.version == "v0003"
        assert registry.versions(key) == ["v0001", "v0003"]


class _Kill(BaseException):
    """Simulated trainer death; BaseException so no handler eats it."""


class TestPublishJournal:
    """The journaled two-phase commit: a publish killed at any fault
    point leaves a registry that recover() returns to a clean state."""

    def _registry(self, tmp_path):
        registry = ModelRegistry(str(tmp_path / "reg"))
        scheme, predictor, rows = fitted_predictor()
        r1 = registry.publish(
            scheme, "sz3", {"pressio:abs": 1e-4}, predictor, verify_rows=rows[:4]
        )
        return registry, scheme, predictor, rows, r1

    def _kill_at(self, point):
        def hook(p, key, version):
            if p == point:
                raise _Kill(point)

        return hook

    @pytest.mark.parametrize("point", PUBLISH_FAULT_POINTS)
    def test_kill_at_every_fault_point_recovers_clean(self, tmp_path, point):
        registry, scheme, predictor, rows, r1 = self._registry(tmp_path)
        with pytest.raises(_Kill):
            registry.publish(
                scheme,
                "sz3",
                {"pressio:abs": 1e-4},
                predictor,
                verify_rows=rows[:4],
                fault_hook=self._kill_at(point),
            )
        # the wreckage is visible to verify() ...
        issues = registry.verify()
        assert issues, f"kill at {point!r} left no detectable wreckage"
        assert any("intent" in i for i in issues)
        # ... the registry still serves (old or new generation, never torn)
        loaded = registry.load(r1.key)
        assert loaded.version in ("v0001", "v0002")
        # ... and recover() makes verify() clean
        actions = registry.recover()
        assert registry.verify() == []
        assert actions["cleared_intents"] == [r1.key]
        if point in ("renamed", "latest"):
            # the blob was fully committed before the kill: the new
            # generation must win, not be thrown away
            assert registry.latest(r1.key) == "v0002"
            assert registry.load(r1.key).version == "v0002"
        else:
            assert registry.latest(r1.key) == "v0001"
        if point == "renamed":
            assert actions["rolled_forward"] == [f"{r1.key}:v0002"]
        if point == "staged":
            assert len(actions["removed_stages"]) == 1

    def test_fault_points_fire_in_commit_order(self, tmp_path):
        registry, scheme, predictor, rows, _ = self._registry(tmp_path)
        seen = []
        registry.publish(
            scheme,
            "sz3",
            {"pressio:abs": 1e-4},
            predictor,
            verify_rows=rows[:4],
            fault_hook=lambda p, k, v: seen.append(p),
        )
        assert seen == list(PUBLISH_FAULT_POINTS)

    def test_recover_quarantines_corrupt_committed_version(self, tmp_path):
        registry, scheme, predictor, rows, r1 = self._registry(tmp_path)
        rows2, y2 = make_rows(seed=9)
        predictor.fit(rows2, y2)
        r2 = registry.publish(scheme, "sz3", {"pressio:abs": 1e-4}, predictor)
        registry.damage_version(r2.key, r2.version)
        assert any("integrity" in i for i in registry.verify())
        actions = registry.recover()
        assert actions["quarantined"] == [f"{r2.key}:v0002"]
        assert registry.verify() == []
        assert registry.latest(r2.key) == "v0001"
        assert registry.load(r2.key).version == "v0001"

    def test_recover_is_idempotent_noop_when_clean(self, tmp_path):
        registry, *_ = self._registry(tmp_path)
        assert registry.verify() == []
        actions = registry.recover()
        assert all(not v for v in actions.values())
        assert registry.verify() == []

    def test_damage_version_invalidates_checksum(self, tmp_path):
        registry, scheme, predictor, rows, r1 = self._registry(tmp_path)
        path = registry.damage_version(r1.key, r1.version)
        assert os.path.exists(path)
        with pytest.raises(ModelIntegrityError):
            registry.load(r1.key, r1.version)


def _race_publish(root, seed, barrier):
    """Child process body for the LATEST race (module-level for fork)."""
    registry = ModelRegistry(root)
    scheme = get_scheme("rahman2023", **RAHMAN_KWARGS)
    predictor = scheme.get_predictor(make_compressor("sz3", pressio__abs=1e-4))
    rows, y = make_rows(seed=seed)
    predictor.fit(rows, y)
    barrier.wait()
    # verify_rows makes the publish prove its own round-trip in-child;
    # a failed proof (or a torn write) exits non-zero.
    registry.publish(
        scheme, "sz3", {"pressio:abs": 1e-4}, predictor, verify_rows=rows[:4]
    )


class TestConcurrentPublishers:
    def test_latest_race_is_last_writer_wins_with_no_torn_state(self, tmp_path):
        """Two publishers racing the same key: both versions land
        intact, version numbers never collide, and LATEST ends up a
        valid pointer at one of them (last writer wins)."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        root = str(tmp_path / "reg")
        registry = ModelRegistry(root)
        scheme, predictor, rows = fitted_predictor()
        r1 = registry.publish(scheme, "sz3", {"pressio:abs": 1e-4}, predictor)
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(target=_race_publish, args=(root, 100 + i, barrier))
            for i in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(120)
        assert all(p.exitcode == 0 for p in procs), [p.exitcode for p in procs]
        # both racers allocated distinct versions; nothing was lost
        versions = registry.versions(r1.key)
        assert versions == ["v0001", "v0002", "v0003"]
        # LATEST is valid, points at a racer, and loads cleanly
        latest = registry.latest(r1.key)
        assert latest in ("v0002", "v0003")
        assert registry.load(r1.key).version == latest
        # every blob round-trips: pinned loads re-verify the checksums
        for version in versions:
            loaded = registry.load(r1.key, version)
            assert loaded.predictor.predict_many(rows).shape == (len(rows),)
        # no journal wreckage survived the race
        assert registry.verify() == []
