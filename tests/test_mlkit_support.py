"""Tests for mlkit support modules: base, metrics, CV, preprocessing,
augmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mlkit import (
    GroupKFold,
    KFold,
    LinearRegression,
    PolynomialFeatures,
    RandomForestRegressor,
    Ridge,
    StandardScaler,
    TargetTransform,
    absolute_percentage_errors,
    cross_val_predict,
    interpolation_augment,
    mae,
    mape,
    max_ape,
    medape,
    r2_score,
    rmse,
    train_test_split,
)


class TestBaseEstimator:
    def test_get_set_params(self):
        model = Ridge(alpha=2.0)
        assert model.get_params() == {"alpha": 2.0}
        model.set_params(alpha=3.0)
        assert model.alpha == 3.0

    def test_set_unknown_param_raises(self):
        with pytest.raises(ValueError):
            Ridge().set_params(gamma=1)

    def test_clone_unfitted(self):
        rng = np.random.default_rng(0)
        X, y = rng.standard_normal((30, 2)), rng.standard_normal(30)
        model = Ridge(alpha=0.5).fit(X, y)
        dup = model.clone()
        assert dup.alpha == 0.5
        assert not dup.is_fitted()
        assert model.is_fitted()

    def test_state_roundtrip_simple(self):
        rng = np.random.default_rng(1)
        X, y = rng.standard_normal((40, 2)), rng.standard_normal(40)
        model = LinearRegression().fit(X, y)
        restored = LinearRegression()
        restored.set_state(model.get_state())
        assert np.allclose(restored.predict(X), model.predict(X))

    def test_state_roundtrip_nested_list(self):
        rng = np.random.default_rng(2)
        X, y = rng.standard_normal((50, 2)), rng.standard_normal(50)
        forest = RandomForestRegressor(n_estimators=4, random_state=0).fit(X, y)
        restored = RandomForestRegressor(n_estimators=4, random_state=0)
        restored.set_state(forest.get_state())
        assert np.allclose(restored.predict(X), forest.predict(X))


class TestMetrics:
    def test_medape_basic(self):
        assert medape([100, 100], [110, 90]) == pytest.approx(10.0)

    def test_medape_robust_to_outlier(self):
        y = np.array([100.0] * 9 + [100.0])
        p = np.array([101.0] * 9 + [10000.0])
        assert medape(y, p) == pytest.approx(1.0)
        assert mape(y, p) > 100

    def test_ape_zero_target_raises(self):
        with pytest.raises(ValueError):
            absolute_percentage_errors([0.0], [1.0])

    def test_max_ape(self):
        assert max_ape([10, 10], [11, 15]) == pytest.approx(50.0)

    def test_mae_rmse(self):
        assert mae([1, 2], [2, 4]) == pytest.approx(1.5)
        assert rmse([0, 0], [3, 4]) == pytest.approx((12.5) ** 0.5)

    def test_r2_perfect_and_constant(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0
        assert r2_score([2, 2, 2], [2, 2, 2]) == 1.0
        assert r2_score([2, 2, 2], [1, 2, 3]) == 0.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            medape([1, 2], [1])


class TestKFold:
    def test_partitions_everything_once(self):
        seen = np.zeros(25, dtype=int)
        for train, val in KFold(5, random_state=1).split(25):
            seen[val] += 1
            assert np.intersect1d(train, val).size == 0
        assert (seen == 1).all()

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(10).split(5))

    def test_reproducible(self):
        a = [v.tolist() for _, v in KFold(3, random_state=7).split(12)]
        b = [v.tolist() for _, v in KFold(3, random_state=7).split(12)]
        assert a == b

    def test_invalid_splits(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestGroupKFold:
    def test_no_group_leakage(self):
        groups = np.repeat(np.arange(8), 5)
        for train, val in GroupKFold(4).split(groups):
            assert set(groups[train]) & set(groups[val]) == set()

    def test_string_groups(self):
        groups = np.array(["a", "a", "b", "b", "c", "c", "d", "d"])
        folds = list(GroupKFold(2).split(groups))
        assert len(folds) == 2

    def test_balanced_by_size(self):
        # One huge group and several small ones: the huge group alone
        # should fill one fold.
        groups = np.array([0] * 50 + [1] * 5 + [2] * 5 + [3] * 5)
        sizes = [len(val) for _, val in GroupKFold(2).split(groups)]
        assert max(sizes) == 50

    def test_too_few_groups(self):
        with pytest.raises(ValueError):
            list(GroupKFold(4).split(np.array([0, 0, 1, 1])))


class TestCrossValPredict:
    def test_every_sample_predicted(self):
        rng = np.random.default_rng(3)
        X = rng.standard_normal((60, 2))
        y = X[:, 0] + 0.01 * rng.standard_normal(60)
        oof = cross_val_predict(LinearRegression(), X, y, cv=KFold(5))
        assert r2_score(y, oof) > 0.9

    def test_grouped_variant(self):
        rng = np.random.default_rng(4)
        X = rng.standard_normal((40, 2))
        y = X[:, 0]
        groups = np.repeat(np.arange(10), 4)
        oof = cross_val_predict(LinearRegression(), X, y, cv=KFold(5), groups=groups)
        assert np.isfinite(oof).all()


class TestTrainTestSplit:
    def test_disjoint_and_complete(self):
        train, test = train_test_split(20, test_fraction=0.25, random_state=0)
        assert len(train) + len(test) == 20
        assert np.intersect1d(train, test).size == 0
        assert len(test) == 5

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(10, test_fraction=1.5)


class TestPreprocessing:
    def test_standard_scaler(self):
        rng = np.random.default_rng(5)
        X = rng.normal(5, 3, size=(100, 2))
        scaler = StandardScaler()
        Z = scaler.fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0, atol=1e-12)
        assert np.allclose(Z.std(axis=0), 1, atol=1e-12)
        assert np.allclose(scaler.inverse_transform(Z), X)

    def test_scaler_constant_feature(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0)

    def test_polynomial_features_degree2(self):
        X = np.array([[2.0, 3.0]])
        out = PolynomialFeatures(degree=2).fit_transform(X)
        assert sorted(out[0].tolist()) == sorted([2.0, 3.0, 4.0, 6.0, 9.0])

    def test_target_transform_log(self):
        rng = np.random.default_rng(6)
        X = rng.uniform(0, 2, size=(80, 1))
        y = np.exp(1.0 + 2.0 * X[:, 0])
        model = TargetTransform(LinearRegression(), transform="log").fit(X, y)
        pred = model.predict(np.array([[1.0]]))[0]
        assert pred == pytest.approx(np.exp(3.0), rel=0.05)

    def test_target_transform_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TargetTransform(LinearRegression()).fit(np.ones((3, 1)), np.array([1.0, -1.0, 2.0]))


class TestAugmentation:
    def test_output_size(self):
        rng = np.random.default_rng(7)
        X, y = rng.standard_normal((50, 3)), rng.standard_normal(50)
        Xa, ya = interpolation_augment(X, y, factor=2.5, random_state=0)
        assert Xa.shape[0] == len(ya) == 125

    def test_noop_factor_one(self):
        X, y = np.ones((5, 2)), np.ones(5)
        Xa, ya = interpolation_augment(X, y, factor=1.0)
        assert Xa.shape == X.shape

    def test_synthetic_points_in_convex_hull_coordinatewise(self):
        rng = np.random.default_rng(8)
        X = rng.uniform(0, 1, size=(30, 2))
        y = rng.uniform(0, 1, size=30)
        Xa, ya = interpolation_augment(X, y, factor=3.0, random_state=1)
        assert Xa.min() >= 0 and Xa.max() <= 1
        assert ya.min() >= 0 and ya.max() <= 1

    def test_labels_interpolated_linearly(self):
        # On a linear function, interpolated labels remain exact.
        rng = np.random.default_rng(9)
        X = rng.standard_normal((40, 2))
        y = X @ np.array([2.0, -1.0]) + 3
        Xa, ya = interpolation_augment(X, y, factor=2.0, random_state=2)
        assert np.allclose(ya, Xa @ np.array([2.0, -1.0]) + 3, atol=1e-9)

    @given(st.integers(min_value=2, max_value=30), st.floats(min_value=1.0, max_value=4.0))
    @settings(max_examples=20, deadline=None)
    def test_size_property(self, n, factor):
        rng = np.random.default_rng(n)
        X, y = rng.standard_normal((n, 2)), rng.standard_normal(n)
        Xa, ya = interpolation_augment(X, y, factor=factor, random_state=0)
        assert Xa.shape[0] == len(ya) == n + int(round((factor - 1) * n))
