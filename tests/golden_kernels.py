"""Golden-stream fixture definitions for the kernel layer.

The vectorized kernel rewrites (LZ77 hash-chain matcher, list-ranking
token decoder, canonical-table build) are only acceptable if they are
*bit-exact*: the byte streams they emit must be identical to the ones
the original interpreted implementations produced.  This module pins
that contract:

* deterministic input generators (seeded ``np.random.default_rng``, so
  the same bytes come back on every run and platform);
* the frozen-variant table: one named entry per (compressor, options)
  pair and per raw LZ77 payload;
* a ``regen`` entry point that writes the frozen streams under
  ``tests/golden/`` — run it **only** when the stream format itself is
  intentionally changed, never to paper over an accidental diff::

      PYTHONPATH=src python -m tests.golden_kernels

``tests/test_golden_streams.py`` asserts byte-identity of every encoder
against these files plus exact decode round-trips and the error-bound
property on the decoded arrays.
"""

from __future__ import annotations

import os

import numpy as np

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


# -- deterministic inputs ----------------------------------------------------

def golden_field(shape: tuple[int, ...] = (24, 20, 16), seed: int = 7) -> np.ndarray:
    """A smooth-but-textured 3-D field: compressible, non-trivial."""
    axes = [np.linspace(0.0, 2.0 * np.pi, s) for s in shape]
    zz, yy, xx = np.meshgrid(*axes, indexing="ij")
    rng = np.random.default_rng(seed)
    field = (
        np.sin(3.0 * xx) * np.cos(2.0 * yy)
        + 0.5 * np.sin(zz + 0.3 * xx)
        + 0.02 * rng.standard_normal(shape)
    )
    return np.ascontiguousarray(field, dtype=np.float64)


def golden_sparse_field(shape: tuple[int, ...] = (24, 20, 16), seed: int = 13) -> np.ndarray:
    """A mostly-zero field (constant-block heavy — the SZx sweet spot)."""
    rng = np.random.default_rng(seed)
    field = np.zeros(shape, dtype=np.float64)
    gate = rng.random(shape) > 0.92
    field[gate] = rng.standard_normal(int(gate.sum()))
    return field


def golden_lz_payloads() -> dict[str, bytes]:
    """Raw byte payloads exercising every LZ77 code path.

    ``periodic`` forces overlapping copies, ``residuals`` mimics a
    quantizer output (short matches, literal islands), ``motif`` repeats
    a long pattern at > 255-byte distance, ``random`` is incompressible
    (stored-raw path), ``runs`` has maximal-length matches, ``tiny`` and
    ``empty`` cover the degenerate ends.
    """
    rng = np.random.default_rng(11)
    residuals = np.clip(
        np.round(rng.standard_normal(60_000) * 2.5), -30, 30
    ).astype(np.int8).tobytes()
    motif = rng.integers(0, 40, 700, dtype=np.int64).astype(np.uint8).tobytes()
    payloads = {
        "periodic": b"abcdab" * 700,
        "residuals": residuals,
        "motif": motif * 60,
        "random": rng.bytes(4096),
        "runs": b"\x00" * 2000 + b"\x07" * 900 + bytes(range(256)) * 4,
        "tiny": b"xyz",
        "empty": b"",
    }
    return payloads


def golden_huffman_symbols(seed: int = 5, size: int = 50_000) -> np.ndarray:
    """A Zipf-ish int64 symbol stream (deep, skewed code tree)."""
    rng = np.random.default_rng(seed)
    sym = rng.zipf(1.3, size).astype(np.int64)
    return np.clip(sym, 1, 5000) - 2500


#: (fixture name, compressor id, options, input kind).  The streams are
#: ``compress_impl`` outputs — the raw codec payload without the generic
#: self-describing header, which is what the kernel layer owns.
GOLDEN_COMPRESSOR_VARIANTS: tuple[tuple[str, str, dict, str], ...] = (
    ("sz3_lorenzo", "sz3", {"pressio:abs": 1e-3}, "field"),
    ("sz3_lorenzo2", "sz3", {"pressio:abs": 1e-3, "sz3:predictor": "lorenzo2"}, "field"),
    ("sz3_interp", "sz3", {"pressio:abs": 1e-3, "sz3:predictor": "interp"}, "field"),
    ("sz3_lz77", "sz3", {"pressio:abs": 1e-3, "sz3:lossless": "lz77"}, "field"),
    ("sz3_sparse", "sz3", {"pressio:abs": 1e-4}, "sparse"),
    ("zfp_accuracy", "zfp", {"pressio:abs": 1e-3}, "field"),
    ("zfp_rate", "zfp", {"pressio:abs": 1e-3, "zfp:mode": "rate", "zfp:rate": 6.0}, "field"),
    ("zfp_lz77", "zfp", {"pressio:abs": 1e-3, "zfp:lossless": "lz77"}, "field"),
    ("szx_default", "szx", {"pressio:abs": 1e-3}, "field"),
    ("szx_lz77", "szx", {"pressio:abs": 1e-3, "szx:lossless": "lz77"}, "field"),
    ("szx_sparse", "szx", {"pressio:abs": 1e-4}, "sparse"),
    ("sperr_default", "sperr", {"pressio:abs": 1e-3}, "field"),
    ("sperr_lz77", "sperr", {"pressio:abs": 1e-3, "sperr:lossless": "lz77"}, "field"),
)


def golden_input(kind: str) -> np.ndarray:
    return golden_field() if kind == "field" else golden_sparse_field()


def compressor_stream(name: str) -> bytes:
    """Encode the named variant with the current implementation."""
    from repro.core.compressor import compressor_registry
    import repro.compressors  # noqa: F401  (registers the plugins)

    for fname, comp_id, options, kind in GOLDEN_COMPRESSOR_VARIANTS:
        if fname == name:
            comp = compressor_registry.create(comp_id)
            comp.set_options(options)
            return comp.compress_impl(golden_input(kind))
    raise KeyError(name)


def lz77_token_stream(payload: bytes) -> bytes:
    """Raw LZ77 token bytes (no lossless header) for *payload*."""
    from repro.encoding.lz import _lz77_compress

    return _lz77_compress(payload)


def huffman_stream() -> bytes:
    from repro.encoding import huffman

    return huffman.encode(golden_huffman_symbols())


def huffman_tables_digest() -> bytes:
    """sha256 of the decode tables for the golden code (2 MiB raw, so the
    fixture pins the digest rather than the bytes)."""
    import hashlib

    from repro.encoding import huffman

    code = huffman.build_code(golden_huffman_symbols())
    sym_table, len_table = code.decode_tables()
    blob = sym_table.astype("<i8").tobytes() + len_table.astype("<i8").tobytes()
    return hashlib.sha256(blob).hexdigest().encode("ascii")


def regen() -> list[str]:
    """(Re)write every golden fixture; returns the paths written."""
    from repro.encoding.lz import lossless_compress

    os.makedirs(GOLDEN_DIR, exist_ok=True)
    written: list[str] = []

    def emit(name: str, blob: bytes) -> None:
        path = os.path.join(GOLDEN_DIR, name)
        with open(path, "wb") as fh:
            fh.write(blob)
        written.append(path)

    for name, _comp, _opts, _kind in GOLDEN_COMPRESSOR_VARIANTS:
        emit(f"comp_{name}.bin", compressor_stream(name))
    for name, payload in golden_lz_payloads().items():
        emit(f"lz77_tokens_{name}.bin", lz77_token_stream(payload))
        emit(f"lz77_stream_{name}.bin", lossless_compress(payload, backend="lz77"))
    emit("huffman_stream.bin", huffman_stream())
    emit("huffman_tables.sha256", huffman_tables_digest())
    return written


if __name__ == "__main__":
    for path in regen():
        print(path)
