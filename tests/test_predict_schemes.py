"""Tests for predictor plugins and all eight prediction schemes."""

import numpy as np
import pytest

from repro.compressors import make_compressor
from repro.core import MissingOptionError, PressioError, SizeMetrics, UnsupportedError
from repro.mlkit import LinearRegression
from repro.predict import (
    EstimatorPredictor,
    IdentityPredictor,
    available_schemes,
    feature_vector,
    get_scheme,
)

ALL_SCHEMES = (
    "tao2019",
    "khan2023",
    "jin2022",
    "wang2023",
    "krasowska2021",
    "underwood2023",
    "ganguli2023",
    "rahman2023",
)


def true_cr(comp, data) -> float:
    size = SizeMetrics()
    comp.set_metrics([size])
    comp.compress(data)
    cr = comp.get_metrics_results()["size:compression_ratio"]
    comp.set_metrics([])
    return cr


def evaluate_scheme_on(scheme, comp, data) -> dict:
    ev = scheme.req_metrics_opts(comp)
    res = ev.evaluate(data)
    out = res.to_dict()
    out.update(scheme.config_features(comp))
    return out


class TestPredictorPlugins:
    def test_feature_vector_assembly(self):
        row = feature_vector({"a": 1.0, "b": 2}, ["b", "a"])
        assert row.tolist() == [2.0, 1.0]

    def test_feature_vector_missing_key(self):
        with pytest.raises(MissingOptionError):
            feature_vector({"a": 1.0}, ["missing"])

    def test_identity_key_predictor(self):
        pred = IdentityPredictor(key="x:y")
        assert pred.predict({"x:y": 4.5}) == 4.5
        with pytest.raises(MissingOptionError):
            pred.predict({})

    def test_identity_formula_predictor(self):
        pred = IdentityPredictor(formula=lambda r: r["a"] * 2)
        assert pred.predict({"a": 3}) == 6.0

    def test_identity_requires_exactly_one(self):
        with pytest.raises(PressioError):
            IdentityPredictor()
        with pytest.raises(PressioError):
            IdentityPredictor(key="k", formula=lambda r: 0)

    def test_estimator_predictor_fit_predict(self):
        rows = [{"f": float(i)} for i in range(20)]
        y = [np.exp(0.2 * i) for i in range(20)]
        pred = EstimatorPredictor(LinearRegression(), ["f"], log_target=True)
        pred.fit(rows, y)
        assert pred.predict({"f": 10.0}) == pytest.approx(np.exp(2.0), rel=0.05)

    def test_estimator_predict_before_fit_raises(self):
        pred = EstimatorPredictor(LinearRegression(), ["f"])
        with pytest.raises(PressioError):
            pred.predict({"f": 1.0})

    def test_estimator_state_roundtrip(self):
        rows = [{"f": float(i)} for i in range(10)]
        y = [float(i + 1) for i in range(10)]
        pred = EstimatorPredictor(LinearRegression(), ["f"], log_target=False)
        pred.fit(rows, y)
        state = pred.get_state()
        fresh = EstimatorPredictor(LinearRegression(), ["f"], log_target=False)
        fresh.set_options({"predictors:state": state})
        assert fresh.predict({"f": 4.0}) == pytest.approx(pred.predict({"f": 4.0}))

    def test_log_target_rejects_nonpositive(self):
        pred = EstimatorPredictor(LinearRegression(), ["f"], log_target=True)
        with pytest.raises(PressioError):
            pred.fit([{"f": 1.0}], [-1.0])


class TestSchemeRegistry:
    def test_all_schemes_registered(self):
        for name in ALL_SCHEMES:
            assert name in available_schemes()

    def test_configuration_reports_training_need(self):
        assert get_scheme("rahman2023").get_configuration()["predictors:needs_training"]
        assert not get_scheme("tao2019").get_configuration()["predictors:needs_training"]

    def test_jin_rejects_zfp(self):
        zfp = make_compressor("zfp", pressio__abs=1e-3)
        with pytest.raises(UnsupportedError):
            get_scheme("jin2022").get_predictor(zfp)
        with pytest.raises(UnsupportedError):
            get_scheme("jin2022").req_metrics_opts(zfp)

    def test_wang_rejects_zfp(self):
        zfp = make_compressor("zfp", pressio__abs=1e-3)
        with pytest.raises(UnsupportedError):
            get_scheme("wang2023").get_predictor(zfp)


class TestUntrainedSchemes:
    """Formula schemes should land in the right ballpark on dense data."""

    @pytest.mark.parametrize("scheme_name", ["tao2019", "khan2023", "jin2022"])
    def test_sz3_estimate_within_2x(self, scheme_name, smooth_field):
        comp = make_compressor("sz3", pressio__abs=1e-3)
        actual = true_cr(comp, smooth_field)
        scheme = get_scheme(scheme_name)
        results = evaluate_scheme_on(scheme, comp, __import__("repro").core.PressioData(
            smooth_field, metadata={"data_id": "s"}))
        est = scheme.get_predictor(comp).predict(results)
        assert actual / 2.5 <= est <= actual * 2.5

    @pytest.mark.parametrize("scheme_name", ["tao2019", "khan2023"])
    def test_zfp_estimate_positive(self, scheme_name, smooth_field):
        from repro.core import PressioData

        comp = make_compressor("zfp", pressio__abs=1e-3)
        scheme = get_scheme(scheme_name)
        results = evaluate_scheme_on(
            scheme, comp, PressioData(smooth_field, metadata={"data_id": "s"})
        )
        est = scheme.get_predictor(comp).predict(results)
        assert est > 0.5

    def test_khan_szx_support(self, sparse_field):
        from repro.core import PressioData

        comp = make_compressor("szx", pressio__abs=1e-3)
        scheme = get_scheme("khan2023")
        results = evaluate_scheme_on(
            scheme, comp, PressioData(sparse_field, metadata={"data_id": "sp"})
        )
        actual = true_cr(comp, sparse_field)
        est = scheme.get_predictor(comp).predict(results)
        assert actual / 4 <= est <= actual * 4

    def test_jin_full_beats_khan_sampled_on_mixed_data(self, small_hurricane):
        """The paper's §6 finding: the full-data model is more accurate
        than the sampled one on sparse/dense mixes (MedAPE over fields)."""
        from repro.core import PressioData
        from repro.mlkit import medape

        jin, khan = get_scheme("jin2022"), get_scheme("khan2023")
        truths, jins, khans = [], [], []
        for i in range(0, len(small_hurricane), 3):
            data = small_hurricane.load_data(i)
            vr = float(data.array.max() - data.array.min()) or 1.0
            comp = make_compressor("sz3", pressio__abs=1e-4 * vr)
            truths.append(true_cr(comp, data))
            jins.append(jin.get_predictor(comp).predict(evaluate_scheme_on(jin, comp, data)))
            khans.append(khan.get_predictor(comp).predict(evaluate_scheme_on(khan, comp, data)))
        assert medape(truths, jins) < medape(truths, khans)


class TestTrainedSchemes:
    @pytest.mark.parametrize(
        "scheme_name", ["krasowska2021", "underwood2023", "ganguli2023", "rahman2023", "wang2023"]
    )
    def test_fit_and_predict_hurricane(self, scheme_name, small_hurricane):
        """Trained schemes fit on some fields and predict unseen ones
        with MedAPE well under 100%."""
        from repro.mlkit import medape

        scheme = get_scheme(scheme_name)
        rows, targets, fields = [], [], []
        for i in range(len(small_hurricane)):
            data = small_hurricane.load_data(i)
            vr = float(data.array.max() - data.array.min()) or 1.0
            comp = make_compressor("sz3", pressio__abs=1e-4 * vr)
            rows.append(evaluate_scheme_on(scheme, comp, data))
            targets.append(true_cr(comp, data))
            fields.append(data.metadata["field"])
        rows_np = np.asarray(targets)
        train = [i for i, f in enumerate(fields) if f not in ("P", "QRAIN")]
        test = [i for i, f in enumerate(fields) if f in ("P", "QRAIN")]
        comp = make_compressor("sz3", pressio__abs=1e-3)
        predictor = scheme.get_predictor(comp)
        predictor.fit([rows[i] for i in train], rows_np[train])
        preds = predictor.predict_many([rows[i] for i in test])
        assert medape(rows_np[test], preds) < 100.0

    def test_rahman_derived_features(self):
        from repro.predict.schemes.fxrz import Rahman2023Scheme

        derived = Rahman2023Scheme.derive_features(
            {
                "sparsity:zero_ratio": 0.9,
                "stat:value_range": 100.0,
                "config:log_abs_bound": -4.0,
            }
        )
        assert derived["sparsity:log_density"] == pytest.approx(np.log10(0.1))
        assert derived["config:log_rel_bound"] == pytest.approx(-6.0)

    def test_ganguli_conformal_interval(self, small_hurricane):
        scheme = get_scheme("ganguli2023")
        rows, targets = [], []
        for i in range(len(small_hurricane)):
            data = small_hurricane.load_data(i)
            vr = float(data.array.max() - data.array.min()) or 1.0
            comp = make_compressor("sz3", pressio__abs=1e-4 * vr)
            rows.append(evaluate_scheme_on(scheme, comp, data))
            targets.append(true_cr(comp, data))
        comp = make_compressor("sz3", pressio__abs=1e-3)
        predictor = scheme.get_predictor(comp)
        predictor.fit(rows, targets)
        point, lo, hi = predictor.predict_interval(rows[0])
        assert lo <= point <= hi
        assert lo > 0  # intervals in CR space stay positive (log-space fit)

    def test_wang_counterfactual_orders(self, smooth_field):
        from repro.core import PressioData

        scheme = get_scheme("wang2023")
        rows, targets = [], []
        rng = np.random.default_rng(0)
        for k in range(8):
            arr = (smooth_field * (0.5 + 0.2 * k)
                   + 0.01 * k * rng.standard_normal(smooth_field.shape).astype(np.float32))
            data = PressioData(arr, metadata={"data_id": f"w{k}"})
            comp = make_compressor("sz3", pressio__abs=1e-3)
            rows.append(evaluate_scheme_on(scheme, comp, data))
            targets.append(true_cr(comp, data))
        comp = make_compressor("sz3", pressio__abs=1e-3)
        predictor = scheme.get_predictor(comp)
        predictor.fit(rows, targets)
        base = predictor.predict(rows[0])
        cf0 = predictor.predict_counterfactual(rows[0], order=0)
        cf2 = predictor.predict_counterfactual(rows[0], order=2)
        assert base > 0 and cf0 > 0 and cf2 > 0
        # Counterfactual for "no predictor" should not beat Lorenzo on
        # smooth data.
        assert cf0 <= base * 1.5
