"""repro-lint CLI contract + the zero-findings gate over the live tree."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import all_rules, run_paths
from repro.analysis.cli import main as lint_main
from repro.bench.cli import main as bench_main

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

BAD_SNIPPET = (
    "import sqlite3\n"
    "\n"
    "def count(path):\n"
    "    conn = sqlite3.connect(path)\n"
    "    return conn.execute('SELECT 1').fetchone()\n"
)

CLEAN_SNIPPET = "def add(a, b):\n    return a + b\n"


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "leaky.py"
    path.write_text(BAD_SNIPPET)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN_SNIPPET)
    return str(path)


def test_src_tree_is_clean():
    """The CI gate, enforced in tier-1: zero active findings over src/."""
    report = run_paths([REPO_SRC])
    assert report.clean, "\n" + report.render_text()


def test_clean_file_exits_zero(clean_file, capsys):
    assert lint_main([clean_file]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one_with_location(bad_file, capsys):
    assert lint_main([bad_file]) == 1
    out = capsys.readouterr().out
    assert f"{bad_file}:4: RL501" in out
    assert "resource-leak" in out


def test_json_format_is_machine_readable(bad_file, capsys):
    assert lint_main([bad_file, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files"] == 1
    assert payload["counts"]["active"] == 1
    [finding] = payload["findings"]
    assert finding["rule"] == "RL501"
    assert finding["line"] == 4
    assert finding["hint"]


def test_rules_filter_by_name_and_id(bad_file):
    assert lint_main([bad_file, "--rules", "RL101"]) == 0
    assert lint_main([bad_file, "--rules", "resource-leak"]) == 1


def test_unknown_rule_is_a_usage_error(bad_file, capsys):
    assert lint_main([bad_file, "--rules", "RL999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_names_all_fifteen(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert len(all_rules()) == 15
    for rule in all_rules():
        assert rule.id in out
        assert rule.name in out


def test_rules_family_prefix_selects_the_whole_family(tmp_path):
    path = tmp_path / "loopy.py"
    path.write_text(
        "import time\n"
        "\n"
        "async def tick():\n"
        "    time.sleep(1)\n"
    )
    assert lint_main([str(path), "--rules", "RL6"]) == 1
    assert lint_main([str(path), "--rules", "RL7"]) == 0
    assert lint_main([str(path), "--rules", "RL6,RL7"]) == 1


def test_github_format_emits_annotations(bad_file, capsys):
    assert lint_main([bad_file, "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert f"::error file={bad_file},line=4,title=RL501 resource-leak::" in out
    assert out.strip().endswith("1 finding(s)")


def test_show_suppressed_includes_silenced_findings(tmp_path, capsys):
    path = tmp_path / "hushed.py"
    path.write_text(
        BAD_SNIPPET.replace(
            "conn = sqlite3.connect(path)",
            "conn = sqlite3.connect(path)  # repro-lint: disable=RL501  # demo",
        )
    )
    assert lint_main([str(path)]) == 0
    assert lint_main([str(path), "--show-suppressed"]) == 0
    assert "[suppressed]" in capsys.readouterr().out


def test_bench_cli_lint_subcommand_delegates(bad_file, clean_file, capsys):
    assert bench_main(["lint", clean_file]) == 0
    capsys.readouterr()
    assert bench_main(["lint", bad_file, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["active"] == 1


class TestChangedMode:
    """--changed scopes reporting without shrinking the project index."""

    HELPER = "import time\n\ndef warm_cache():\n    time.sleep(0.5)\n"
    APP_CLEAN = "def ping():\n    return 'pong'\n"
    APP_BAD = "from helper import warm_cache\n\nasync def handle():\n    warm_cache()\n"

    @pytest.fixture
    def git_repo(self, tmp_path, monkeypatch):
        import subprocess

        def git(*argv):
            subprocess.run(
                ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
                cwd=tmp_path,
                check=True,
                capture_output=True,
            )

        (tmp_path / "helper.py").write_text(self.HELPER)
        (tmp_path / "app.py").write_text(self.APP_CLEAN)
        git("init", "-q")
        git("add", "-A")
        git("commit", "-qm", "seed")
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_cross_file_finding_in_changed_file_is_reported(self, git_repo, capsys):
        # The blocking reason lives in *unchanged* helper.py: the full
        # tree must still be indexed for the call graph to resolve.
        (git_repo / "app.py").write_text(self.APP_BAD)
        assert lint_main([str(git_repo), "--changed"]) == 1
        out = capsys.readouterr().out
        assert "RL601" in out
        assert "(1 in scope)" in out

    def test_finding_in_unchanged_file_is_out_of_scope(self, git_repo, capsys):
        import subprocess

        (git_repo / "app.py").write_text(self.APP_BAD)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", "add", "-A"],
            cwd=git_repo, check=True, capture_output=True,
        )
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", "commit", "-qm", "bad"],
            cwd=git_repo, check=True, capture_output=True,
        )
        (git_repo / "other.py").write_text("X = 1\n")
        assert lint_main([str(git_repo), "--changed"]) == 0
        out = capsys.readouterr().out
        assert "(1 in scope)" in out
        # ...but a full run still sees it.
        assert lint_main([str(git_repo)]) == 1

    def test_outside_a_git_repo_is_a_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path.parent))
        assert lint_main([str(tmp_path), "--changed"]) == 2
        assert "--changed" in capsys.readouterr().err

    def test_bench_cli_forwards_changed(self, git_repo, capsys):
        (git_repo / "app.py").write_text(self.APP_BAD)
        assert bench_main(["lint", str(git_repo), "--changed", "HEAD"]) == 1
        assert "(1 in scope)" in capsys.readouterr().out


def test_module_entry_point_runs(bad_file):
    import subprocess
    import sys

    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", bad_file],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 1
    assert "RL501" in proc.stdout
