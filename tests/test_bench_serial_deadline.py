"""Serial-engine task deadlines (SIGALRM guard).

The thread engine's watchdog abandons hung *other* threads; the serial
engine has no other thread, so before this guard ``task_timeout`` was
silently unenforced on the paper's default single-worker path.  These
tests pin the contract: a hung task is interrupted and classified as a
retriable TIMEOUT on the main thread, and the guard degrades to a
warning-once no-op where signals cannot be delivered.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.bench.taskqueue as taskqueue_mod
from repro.bench import Task, TaskQueue
from repro.core import Status


def make_tasks(n=3):
    return [
        Task(
            data_index=d,
            data_id=f"data/{d}",
            compressor_id="sz3",
            compressor_options={"pressio:abs": 1e-4},
            dataset_config={"entry:data_id": f"data/{d}"},
            replicate=0,
            nbytes=1 << 20,
        )
        for d in range(n)
    ]


def test_hung_task_times_out_on_serial_engine():
    tasks = make_tasks(1)
    queue = TaskQueue(1, "serial", max_retries=1, task_timeout=0.2)

    def hang(task, worker):
        time.sleep(30)
        return {}

    t0 = time.perf_counter()
    results, stats = queue.run(tasks, hang)
    elapsed = time.perf_counter() - t0
    assert elapsed < 10, "deadline did not interrupt the hung task"
    assert stats.completed == 0
    assert stats.failed == 1
    assert stats.timeouts >= 1
    (result,) = results
    assert not result.ok
    assert result.status == int(Status.TIMEOUT)
    assert "deadline" in result.error


def test_timeout_is_retriable():
    # First attempt hangs, the retry succeeds: TIMEOUT must flow into
    # the existing retry machinery, not fail the task permanently.
    attempts = []

    def flaky(task, worker):
        attempts.append(task.key())
        if len(attempts) == 1:
            time.sleep(30)
        return {"ok": True}

    queue = TaskQueue(1, "serial", max_retries=2, task_timeout=0.2)
    results, stats = queue.run(make_tasks(1), flaky)
    assert stats.completed == 1
    assert stats.failed == 0
    assert stats.timeouts == 1
    assert stats.retries == 1
    assert results[0].ok and results[0].attempts == 2


def test_fast_tasks_unaffected_by_deadline():
    queue = TaskQueue(1, "serial", task_timeout=5.0)
    results, stats = queue.run(make_tasks(4), lambda t, w: {"v": 1})
    assert stats.completed == 4
    assert stats.timeouts == 0
    assert all(r.ok for r in results)


def test_deadline_restores_previous_handler_and_timer():
    import signal

    sentinel = []
    previous = signal.signal(signal.SIGALRM, lambda *a: sentinel.append(a))
    try:
        queue = TaskQueue(1, "serial", task_timeout=0.5)
        queue.run(make_tasks(1), lambda t, w: {})
        assert signal.getsignal(signal.SIGALRM) is not signal.SIG_DFL
        # the guard must have restored our handler and cleared the timer
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
        handler = signal.getsignal(signal.SIGALRM)
        assert handler is not None and handler.__name__ == "<lambda>"
    finally:
        signal.signal(signal.SIGALRM, previous)


def test_off_main_thread_degrades_to_warning_noop(monkeypatch):
    # Run the whole serial queue on a non-main thread: the guard cannot
    # deliver SIGALRM there, so the task must *complete* (no interrupt)
    # and a single warning must be emitted.
    monkeypatch.setattr(taskqueue_mod, "_ALARM_UNAVAILABLE_WARNED", False)
    captured = {}

    def run():
        queue = TaskQueue(1, "serial", task_timeout=0.2)
        with pytest.warns(UserWarning, match="cannot be enforced"):
            results, stats = queue.run(
                make_tasks(1), lambda t, w: (time.sleep(0.4), {"done": 1})[1]
            )
        captured["results"], captured["stats"] = results, stats

    worker = threading.Thread(target=run)
    worker.start()
    worker.join(30)
    assert captured["stats"].completed == 1
    assert captured["stats"].timeouts == 0
    assert captured["results"][0].payload == {"done": 1}


def test_warning_fires_only_once(monkeypatch):
    monkeypatch.setattr(taskqueue_mod, "_ALARM_UNAVAILABLE_WARNED", False)
    import warnings as warnings_mod

    records = []

    def run():
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            queue = TaskQueue(1, "serial", task_timeout=0.2)
            queue.run(make_tasks(2), lambda t, w: {})
        records.extend(caught)

    worker = threading.Thread(target=run)
    worker.start()
    worker.join(30)
    relevant = [r for r in records if "cannot be enforced" in str(r.message)]
    assert len(relevant) == 1
