"""Tests for stable option hashing (checkpoint key stability)."""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PressioOptions, combined_hash, options_hash
from repro.core.hashing import canonical_bytes

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)


class TestDeterminism:
    def test_same_options_same_hash(self):
        a = PressioOptions({"pressio:abs": 1e-4, "sz3:predictor": "lorenzo"})
        b = PressioOptions({"sz3:predictor": "lorenzo", "pressio:abs": 1e-4})
        assert options_hash(a) == options_hash(b)

    def test_different_value_different_hash(self):
        a = options_hash({"pressio:abs": 1e-4})
        b = options_hash({"pressio:abs": 1e-6})
        assert a != b

    def test_type_distinguished(self):
        assert options_hash({"k": 1}) != options_hash({"k": 1.0})
        assert options_hash({"k": 1}) != options_hash({"k": "1"})
        assert options_hash({"k": True}) != options_hash({"k": 1})

    def test_opaque_entries_ignored(self):
        base = options_hash({"a": 1})
        with_cb = options_hash({"a": 1, "cb": (lambda: None)})
        assert base == with_cb

    def test_cross_process_stability(self):
        """The whole point: hashes must survive interpreter restarts."""
        code = (
            "from repro.core import options_hash;"
            "print(options_hash({'pressio:abs': 1e-4, 's': 'x', 'n': 3}))"
        )
        out1 = subprocess.run([sys.executable, "-c", code], capture_output=True, text=True)
        here = options_hash({"pressio:abs": 1e-4, "s": "x", "n": 3})
        assert out1.stdout.strip() == here

    def test_array_values_hashable(self):
        a = options_hash({"arr": np.arange(5)})
        b = options_hash({"arr": np.arange(5)})
        c = options_hash({"arr": np.arange(6)})
        assert a == b != c

    def test_nested_structures(self):
        a = options_hash({"cfg": {"x": [1, 2, {"y": 3}]}})
        b = options_hash({"cfg": {"x": [1, 2, {"y": 3}]}})
        c = options_hash({"cfg": {"x": [1, 2, {"y": 4}]}})
        assert a == b != c


class TestCanonicalEncoding:
    def test_container_scalar_no_collision(self):
        assert canonical_bytes({"k": [1]}) != canonical_bytes({"k": 1})

    def test_list_order_matters(self):
        assert canonical_bytes({"k": [1, 2]}) != canonical_bytes({"k": [2, 1]})

    def test_empty_variants_differ(self):
        assert canonical_bytes({"k": []}) != canonical_bytes({"k": {}})
        assert canonical_bytes({"k": ""}) != canonical_bytes({"k": b""})

    @given(st.dictionaries(st.text(min_size=1, max_size=10), scalars, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_hash_is_deterministic_property(self, mapping):
        assert options_hash(mapping) == options_hash(dict(mapping))

    @given(
        st.dictionaries(st.text(min_size=1, max_size=8), scalars, min_size=1, max_size=4),
        st.text(min_size=1, max_size=8),
        scalars,
    )
    @settings(max_examples=50, deadline=None)
    def test_value_change_changes_hash(self, mapping, key, new_value):
        base = options_hash(mapping)
        changed = dict(mapping)
        changed[key] = new_value
        if changed != mapping:
            assert options_hash(changed) != base


class TestCombinedHash:
    def test_part_order_matters(self):
        a = combined_hash({"x": 1}, {"y": 2})
        b = combined_hash({"y": 2}, {"x": 1})
        assert a != b

    def test_replicate_distinguishes(self):
        a = combined_hash({"x": 1}, "rep0")
        b = combined_hash({"x": 1}, "rep1")
        assert a != b

    def test_mixed_parts(self):
        h = combined_hash({"x": 1}, "meta", PressioOptions({"y": 2}))
        assert len(h) == 64
        assert h == combined_hash({"x": 1}, "meta", {"y": 2})
