"""Tests for the SQLite checkpoint store and task key model."""

import time

import numpy as np
import pytest

from repro.bench import CheckpointStore, Task, precompute_keys


def make_task(eb=1e-4, rep=0, data="hurricane/P/0") -> Task:
    return Task(
        data_index=0,
        data_id=data,
        compressor_id="sz3",
        compressor_options={"pressio:abs": eb},
        dataset_config={"entry:data_id": data},
        experiment={"schemes": ["khan2023"]},
        replicate=rep,
    )


class TestTaskKeys:
    def test_key_is_stable(self):
        assert make_task().key() == make_task().key()

    def test_key_varies_with_each_component(self):
        base = make_task().key()
        assert make_task(eb=1e-6).key() != base
        assert make_task(rep=1).key() != base
        assert make_task(data="hurricane/U/0").key() != base

    def test_precompute_rejects_duplicates(self):
        with pytest.raises(ValueError):
            precompute_keys([make_task(), make_task()])

    def test_precompute_returns_mapping(self):
        tasks = [make_task(), make_task(eb=1e-6)]
        mapping = precompute_keys(tasks)
        assert len(mapping) == 2
        assert all(mapping[t.key()] is t for t in tasks)

    def test_component_hashes_exposed(self):
        task = make_task()
        assert len(task.compressor_hash()) == 64
        assert task.compressor_hash() != task.dataset_hash()


class TestCheckpointStore:
    def test_put_get_roundtrip(self):
        store = CheckpointStore(":memory:")
        store.put("k1", {"cr": 3.5, "field": "P"})
        assert store.get("k1") == {"cr": 3.5, "field": "P"}
        assert store.get("missing") is None

    def test_has_and_pending(self):
        store = CheckpointStore(":memory:")
        store.put("a", {})
        assert store.has("a") and not store.has("b")
        assert store.pending(["a", "b", "c"]) == ["b", "c"]

    def test_replace_semantics(self):
        store = CheckpointStore(":memory:")
        store.put("a", {"v": 1})
        store.put("a", {"v": 2})
        assert store.get("a") == {"v": 2}
        assert store.count() == 1

    def test_delete(self):
        store = CheckpointStore(":memory:")
        store.put("a", {"v": 1})
        store.delete("a")
        assert not store.has("a")

    def test_numpy_payloads_serialised(self):
        store = CheckpointStore(":memory:")
        store.put("a", {"scalar": np.float64(2.5), "arr": np.arange(3), "nan": float("nan")})
        out = store.get("a")
        assert out["scalar"] == 2.5
        assert out["arr"] == [0, 1, 2]
        assert out["nan"] is None

    def test_nan_uniform_across_spellings(self):
        """numpy-scalar NaN and Python NaN must round-trip identically
        (both null), including NaN nested inside arrays."""
        store = CheckpointStore(":memory:")
        store.put(
            "a",
            {
                "np_nan": np.float64("nan"),
                "np32_nan": np.float32("nan"),
                "py_nan": float("nan"),
                "arr_with_nan": np.array([1.0, float("nan"), 3.0]),
                "nested": [np.float32("nan"), {"x": np.float64("nan")}],
            },
        )
        out = store.get("a")
        assert out["np_nan"] is None
        assert out["np32_nan"] is None
        assert out["py_nan"] is None
        assert out["arr_with_nan"] == [1.0, None, 3.0]
        assert out["nested"] == [None, {"x": None}]

    def test_query_by_hashes(self):
        store = CheckpointStore(":memory:")
        store.put("a", {"v": 1}, compressor_hash="c1", dataset_hash="d1")
        store.put("b", {"v": 2}, compressor_hash="c1", dataset_hash="d2")
        store.put("c", {"v": 3}, compressor_hash="c2", dataset_hash="d1")
        assert len(store.query(compressor_hash="c1")) == 2
        assert store.query(compressor_hash="c2", dataset_hash="d1")[0]["v"] == 3
        assert len(store.query()) == 3

    def test_persistence_across_handles(self, tmp_path):
        path = str(tmp_path / "ck.db")
        with CheckpointStore(path) as store:
            store.put("a", {"v": 1})
        with CheckpointStore(path) as store:
            assert store.get("a") == {"v": 1}

    def test_hash_version_guard(self, tmp_path, monkeypatch):
        path = str(tmp_path / "ck.db")
        CheckpointStore(path).close()
        import repro.bench.checkpoint as ck

        monkeypatch.setattr(ck, "HASH_VERSION", 999)
        with pytest.raises(RuntimeError, match="hash version"):
            CheckpointStore(path)


class TestBufferedFlush:
    def test_batches_commits(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "b.db"), flush_every=8)
        base = store.commit_count
        for i in range(20):
            store.put(f"k{i}", {"v": i})
        assert store.commit_count - base == 2  # two full batches, tail buffered
        store.flush()
        assert store.commit_count - base == 3

    def test_buffered_results_visible_to_reads(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "b.db"), flush_every=100)
        store.put("a", {"v": 1})
        assert store.has("a")
        assert store.get("a") == {"v": 1}
        assert store.pending(["a", "b"]) == ["b"]
        store.put("a", {"v": 2})  # replace while buffered
        assert store.get("a") == {"v": 2}
        assert store.count() == 1  # count flushes first, still one row

    def test_put_many_single_commit(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "m.db"))
        base = store.commit_count
        store.put_many(
            [{"key": f"k{i}", "payload": {"v": i}, "replicate": i} for i in range(50)]
        )
        assert store.commit_count - base == 1
        assert store.count() == 50
        assert store.get("k7") == {"v": 7}

    def test_pending_batched_query_matches_per_key(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "p.db"))
        keys = [f"key-{i:04d}" for i in range(1200)]  # spans >1 IN-chunk
        store.put_many([{"key": k, "payload": {}} for k in keys[::2]])
        missing = store.pending(keys)
        assert missing == keys[1::2]

    def test_flush_on_close_and_on_exception(self, tmp_path):
        path = str(tmp_path / "f.db")
        with pytest.raises(RuntimeError):
            with CheckpointStore(path, flush_every=100) as store:
                store.put("a", {"v": 1})
                raise RuntimeError("campaign interrupted")
        assert CheckpointStore(path).get("a") == {"v": 1}

    def test_crash_before_flush_is_all_or_nothing(self, tmp_path):
        """A crash loses only the unflushed tail: every committed batch
        is fully present, the in-flight batch fully absent, and the
        restarted store reports exactly the lost keys as pending."""
        path = str(tmp_path / "crash.db")
        store = CheckpointStore(path, flush_every=10)
        keys = [f"k{i:02d}" for i in range(25)]
        for i, k in enumerate(keys):
            store.put(k, {"v": i})
        # Simulate the process dying: the connection goes away without
        # flush() or close() ever running.
        store._db.close()
        restarted = CheckpointStore(path)
        assert restarted.count() == 20
        assert restarted.pending(keys) == keys[20:]
        for i, k in enumerate(keys[:20]):
            assert restarted.get(k) == {"v": i}  # no partial rows

    def test_wal_mode_for_file_stores(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "w.db"))
        mode = store._db.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"


class TestTimeBasedFlush:
    """Satellite: wall-clock flush_interval alongside count-based
    flush_every — the buffer commits on whichever trips first."""

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="flush_interval"):
            CheckpointStore(":memory:", flush_interval=0)
        with pytest.raises(ValueError, match="flush_interval"):
            CheckpointStore(":memory:", flush_interval=-1.5)

    def test_count_trips_first_under_long_interval(self, tmp_path):
        # A 60 s interval never fires inside this test; the count-based
        # threshold must still drive commits exactly as before.
        store = CheckpointStore(
            str(tmp_path / "c.db"), flush_every=2, flush_interval=60.0
        )
        base = store.commit_count
        store.put("a", {"v": 1})
        assert store.commit_count == base  # below both thresholds
        store.put("b", {"v": 2})
        assert store.commit_count == base + 1  # count tripped
        store.close()

    def test_timer_flushes_idle_buffer(self, tmp_path):
        """The daemon timer bounds data loss even when no put arrives:
        a buffered row becomes durable (visible to a second connection)
        without flush()/close() ever being called on the writer."""
        path = str(tmp_path / "t.db")
        store = CheckpointStore(path, flush_every=100, flush_interval=0.05)
        store.put("k", {"v": 1})
        reader = CheckpointStore(path)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and reader.count() == 0:
            time.sleep(0.02)
        assert reader.count() == 1
        assert reader.get("k") == {"v": 1}
        store.close()
        reader.close()

    def test_interval_trips_put_despite_large_flush_every(self, tmp_path):
        store = CheckpointStore(
            str(tmp_path / "i.db"), flush_every=10_000, flush_interval=0.05
        )
        store.put("a", {"v": 1})
        time.sleep(0.1)  # let the interval elapse
        store.put("b", {"v": 2})  # this put (or the timer) must flush
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and store.commit_count == 0:
            time.sleep(0.02)
        assert store.commit_count >= 1
        store.close()

    def test_close_stops_the_timer_thread(self, tmp_path):
        store = CheckpointStore(
            str(tmp_path / "s.db"), flush_every=100, flush_interval=0.05
        )
        timer = store._flush_timer
        assert timer is not None and timer.is_alive()
        store.close()
        timer.join(timeout=5.0)
        assert not timer.is_alive()


class TestIntegrity:
    """Checksum verification and at-rest corruption quarantine."""

    def test_verify_clean_store_returns_nothing(self):
        store = CheckpointStore(":memory:")
        for i in range(5):
            store.put(f"k{i}", {"v": i})
        assert store.verify() == []
        assert store.count() == 5

    def test_verify_quarantines_corrupt_rows_back_to_pending(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "i.db"))
        keys = [f"k{i}" for i in range(6)]
        for i, k in enumerate(keys):
            store.put(k, {"v": i})
        assert store.corrupt_rows(["k1", "k4"]) == 2
        quarantined = store.verify()
        assert sorted(quarantined) == ["k1", "k4"]
        # Quarantined rows are gone: pending() reports them for recompute,
        # the healthy rows are untouched.
        assert sorted(store.pending(keys)) == ["k1", "k4"]
        assert store.get("k0") == {"v": 0}
        # A second audit finds nothing left to complain about.
        assert store.verify() == []

    def test_verify_backfills_legacy_rows(self, tmp_path):
        import json
        import sqlite3
        import time as time_mod

        from repro.core.hashing import HASH_VERSION

        # A pre-integrity database: no checksum column at all.
        path = str(tmp_path / "legacy.db")
        db = sqlite3.connect(path)
        db.executescript(
            """
            CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
            CREATE TABLE results (
                key TEXT PRIMARY KEY,
                compressor_hash TEXT NOT NULL,
                dataset_hash TEXT NOT NULL,
                experiment_hash TEXT NOT NULL,
                replicate INTEGER NOT NULL,
                payload TEXT NOT NULL,
                created_at REAL NOT NULL
            );
            """
        )
        db.execute(
            "INSERT INTO meta VALUES ('hash_version', ?)", (str(HASH_VERSION),)
        )
        db.execute(
            "INSERT INTO results VALUES ('old', '', '', '', 0, ?, ?)",
            (json.dumps({"v": 1}), time_mod.time()),
        )
        db.execute(
            "INSERT INTO results VALUES ('rotten', '', '', '', 0, ?, ?)",
            ('{"v": not-json', time_mod.time()),
        )
        db.commit()
        db.close()

        store = CheckpointStore(path)  # migration adds the column
        assert store.verify() == ["rotten"]  # parses → backfilled; not → gone
        assert store.get("old") == {"v": 1}
        assert store.verify() == []  # backfilled checksum now validates
        # The backfilled row is protected from future corruption.
        store.corrupt_rows(["old"])
        assert store.verify() == ["old"]


class TestFailureLedger:
    def test_record_and_read_failures(self):
        store = CheckpointStore(":memory:")
        store.record_failure("k1", "boom", status=1, attempts=3)
        store.record_failure("k2", "unsupported", status=5, attempts=1)
        ledger = store.failures()
        assert {e["key"] for e in ledger} == {"k1", "k2"}
        by_key = {e["key"]: e for e in ledger}
        assert by_key["k1"]["attempts"] == 3
        assert by_key["k2"]["status"] == 5
        assert store.failed_keys() == {"k1", "k2"}

    def test_poison_keys_only_permanent(self):
        from repro.core import Status

        store = CheckpointStore(":memory:")
        store.record_failure("transient", "io error", status=int(Status.GENERIC_ERROR))
        store.record_failure("poison", "bad option", status=int(Status.INVALID_OPTION))
        store.record_failure("poison2", "unsupported", status=int(Status.UNSUPPORTED))
        assert store.poison_keys() == {"poison", "poison2"}

    def test_record_replaces_and_clear_removes(self):
        store = CheckpointStore(":memory:")
        store.record_failure("k", "first", status=1, attempts=1)
        store.record_failure("k", "second", status=1, attempts=2)
        assert len(store.failures()) == 1
        assert store.failures()[0]["error"] == "second"
        store.clear_failures(["k"])
        assert store.failures() == []
        store.clear_failures([])  # no-op on empty input

    def test_ledger_persists_across_handles(self, tmp_path):
        path = str(tmp_path / "ledger.db")
        with CheckpointStore(path) as store:
            store.record_failure("k", "boom", status=8, attempts=2)
        assert CheckpointStore(path).failed_keys() == {"k"}
