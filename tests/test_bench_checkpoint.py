"""Tests for the SQLite checkpoint store and task key model."""

import numpy as np
import pytest

from repro.bench import CheckpointStore, Task, precompute_keys


def make_task(eb=1e-4, rep=0, data="hurricane/P/0") -> Task:
    return Task(
        data_index=0,
        data_id=data,
        compressor_id="sz3",
        compressor_options={"pressio:abs": eb},
        dataset_config={"entry:data_id": data},
        experiment={"schemes": ["khan2023"]},
        replicate=rep,
    )


class TestTaskKeys:
    def test_key_is_stable(self):
        assert make_task().key() == make_task().key()

    def test_key_varies_with_each_component(self):
        base = make_task().key()
        assert make_task(eb=1e-6).key() != base
        assert make_task(rep=1).key() != base
        assert make_task(data="hurricane/U/0").key() != base

    def test_precompute_rejects_duplicates(self):
        with pytest.raises(ValueError):
            precompute_keys([make_task(), make_task()])

    def test_precompute_returns_mapping(self):
        tasks = [make_task(), make_task(eb=1e-6)]
        mapping = precompute_keys(tasks)
        assert len(mapping) == 2
        assert all(mapping[t.key()] is t for t in tasks)

    def test_component_hashes_exposed(self):
        task = make_task()
        assert len(task.compressor_hash()) == 64
        assert task.compressor_hash() != task.dataset_hash()


class TestCheckpointStore:
    def test_put_get_roundtrip(self):
        store = CheckpointStore(":memory:")
        store.put("k1", {"cr": 3.5, "field": "P"})
        assert store.get("k1") == {"cr": 3.5, "field": "P"}
        assert store.get("missing") is None

    def test_has_and_pending(self):
        store = CheckpointStore(":memory:")
        store.put("a", {})
        assert store.has("a") and not store.has("b")
        assert store.pending(["a", "b", "c"]) == ["b", "c"]

    def test_replace_semantics(self):
        store = CheckpointStore(":memory:")
        store.put("a", {"v": 1})
        store.put("a", {"v": 2})
        assert store.get("a") == {"v": 2}
        assert store.count() == 1

    def test_delete(self):
        store = CheckpointStore(":memory:")
        store.put("a", {"v": 1})
        store.delete("a")
        assert not store.has("a")

    def test_numpy_payloads_serialised(self):
        store = CheckpointStore(":memory:")
        store.put("a", {"scalar": np.float64(2.5), "arr": np.arange(3), "nan": float("nan")})
        out = store.get("a")
        assert out["scalar"] == 2.5
        assert out["arr"] == [0, 1, 2]
        assert out["nan"] is None

    def test_query_by_hashes(self):
        store = CheckpointStore(":memory:")
        store.put("a", {"v": 1}, compressor_hash="c1", dataset_hash="d1")
        store.put("b", {"v": 2}, compressor_hash="c1", dataset_hash="d2")
        store.put("c", {"v": 3}, compressor_hash="c2", dataset_hash="d1")
        assert len(store.query(compressor_hash="c1")) == 2
        assert store.query(compressor_hash="c2", dataset_hash="d1")[0]["v"] == 3
        assert len(store.query()) == 3

    def test_persistence_across_handles(self, tmp_path):
        path = str(tmp_path / "ck.db")
        with CheckpointStore(path) as store:
            store.put("a", {"v": 1})
        with CheckpointStore(path) as store:
            assert store.get("a") == {"v": 1}

    def test_hash_version_guard(self, tmp_path, monkeypatch):
        path = str(tmp_path / "ck.db")
        CheckpointStore(path).close()
        import repro.bench.checkpoint as ck

        monkeypatch.setattr(ck, "HASH_VERSION", 999)
        with pytest.raises(RuntimeError, match="hash version"):
            CheckpointStore(path)
