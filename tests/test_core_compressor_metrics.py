"""Tests for the compressor plugin framework and standard metrics."""

import numpy as np
import pytest

from repro.core import (
    CorruptStreamError,
    ErrorStatMetrics,
    NoopCompressor,
    PressioData,
    SizeMetrics,
    TimeMetrics,
    compressor_registry,
    make_compressor,
)
from repro.core.compressor import clone_compressor, _pack_header, _unpack_header
from repro.compressors import SZ3Compressor  # registers real codecs


class TestStreamHeader:
    def test_roundtrip(self):
        arr = np.zeros((3, 4, 5), dtype=np.float32)
        dtype, shape, payload = _unpack_header(_pack_header(arr, b"xyz"))
        assert dtype == np.float32
        assert shape == (3, 4, 5)
        assert payload == b"xyz"

    def test_bad_magic(self):
        with pytest.raises(CorruptStreamError):
            _unpack_header(b"XXXX" + b"\x00" * 40)

    def test_truncated(self):
        arr = np.zeros(4, dtype=np.float32)
        stream = _pack_header(arr, b"abcdef")
        with pytest.raises(CorruptStreamError):
            _unpack_header(stream[:-3])


class TestNoop:
    def test_roundtrip_identity(self, smooth_field):
        comp = NoopCompressor()
        stream, recon = comp.roundtrip(smooth_field)
        assert np.array_equal(recon.array, smooth_field)
        assert recon.shape == smooth_field.shape

    def test_decompress_accepts_bytes(self, smooth_field):
        comp = NoopCompressor()
        raw = comp.compress(smooth_field).tobytes()
        recon = comp.decompress(raw)
        assert np.array_equal(recon.array, smooth_field)


class TestRegistryIntegration:
    def test_make_compressor_with_dunder_options(self):
        comp = make_compressor("sz3", pressio__abs=1e-5)
        assert comp.abs_bound == 1e-5

    def test_known_codecs_registered(self):
        for name in ("noop", "sz3", "zfp", "szx"):
            assert name in compressor_registry

    def test_clone_compressor_copies_options(self):
        comp = make_compressor("sz3", pressio__abs=3e-3)
        dup = clone_compressor(comp)
        assert dup is not comp
        assert dup.abs_bound == 3e-3
        assert len(dup.get_metrics().plugins) == 0


class TestMetricsHooks:
    def test_size_metrics(self, smooth_field):
        comp = make_compressor("sz3", pressio__abs=1e-3)
        size = SizeMetrics()
        comp.set_metrics([size])
        comp.compress(smooth_field)
        res = comp.get_metrics_results()
        assert res["size:uncompressed_size"] == smooth_field.nbytes
        assert res["size:compressed_size"] > 0
        assert res["size:compression_ratio"] > 1.0

    def test_time_metrics_records_both_directions(self, smooth_field):
        comp = make_compressor("szx", pressio__abs=1e-3)
        timer = TimeMetrics()
        comp.set_metrics([timer])
        comp.decompress(comp.compress(smooth_field))
        res = comp.get_metrics_results()
        assert res["time:compress"] > 0
        assert res["time:decompress"] > 0

    def test_error_stat_metrics(self, smooth_field):
        comp = make_compressor("sz3", pressio__abs=1e-3)
        err = ErrorStatMetrics()
        comp.set_metrics([err])
        comp.decompress(comp.compress(smooth_field))
        res = comp.get_metrics_results()
        assert res["error_stat:max_error"] <= 1e-3 * 1.001
        assert res["error_stat:value_range"] > 0
        assert res["error_stat:psnr"] > 20
        assert 0 <= res["error_stat:mae"] <= res["error_stat:max_error"]

    def test_composite_merges_and_declares_union(self, smooth_field):
        comp = make_compressor("szx", pressio__abs=1e-3)
        comp.set_metrics([SizeMetrics(), TimeMetrics()])
        comp.compress(smooth_field)
        res = comp.get_metrics_results()
        assert "size:compression_ratio" in res
        assert "time:compress" in res
        inv = comp.get_metrics().invalidations
        assert "predictors:error_dependent" in inv
        assert "predictors:runtime" in inv

    def test_metadata_flows_to_stream(self, smooth_field):
        comp = make_compressor("szx", pressio__abs=1e-3)
        data = PressioData(smooth_field, metadata={"field": "P"})
        stream = comp.compress(data)
        assert stream.metadata["field"] == "P"
        assert stream.metadata["compressor"] == "szx"


class TestConfiguration:
    def test_get_configuration_reports_error_affecting(self):
        comp = make_compressor("sz3")
        conf = comp.get_configuration()
        assert conf["pressio:id"] == "sz3"
        assert "pressio:abs" in conf["pressio:error_affecting"]

    def test_missing_bound_raises(self):
        comp = SZ3Compressor()
        comp.set_options({"pressio:abs": None})
        from repro.core import MissingOptionError

        with pytest.raises(MissingOptionError):
            _ = comp.abs_bound


class TestRelativeBound:
    """``pressio:rel`` (footnote 6): value-range-relative error bounds."""

    @pytest.mark.parametrize("name", ["sz3", "zfp", "szx", "sperr"])
    def test_rel_bound_scales_with_range(self, name):
        rng = np.random.default_rng(11)
        for scale in (1.0, 1e4):
            data = (rng.standard_normal((16, 16, 8)) * scale).astype(np.float32)
            comp = make_compressor(name)
            comp.set_options({"pressio:rel": 1e-4, "pressio:abs": None})
            recon = comp.decompress(comp.compress(data)).array
            vrange = float(data.max() - data.min())
            err = np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
            assert err <= 1e-4 * vrange * 1.001 + 1e-12, (name, scale)

    def test_rel_is_error_affecting(self):
        comp = make_compressor("sz3")
        assert "pressio:rel" in comp.get_configuration()["pressio:error_affecting"]

    def test_abs_takes_effect_when_rel_unset(self, smooth_field):
        comp = make_compressor("sz3", pressio__abs=1e-3)
        recon = comp.decompress(comp.compress(smooth_field)).array
        err = np.abs(recon.astype(np.float64) - smooth_field.astype(np.float64)).max()
        assert err <= 1e-3 * 1.001
