"""Featurization-cache correctness: keying, bit-identity, crash safety.

The cache's contract is stronger than "usually right": a hit must be
bit-identical to what the evaluator would produce (golden tests), keys
must move exactly when a feature-relevant option moves (sensitivity in
both directions, derived from the invalidation vocabulary), and a
worker killed mid-store must leave the shared tier serving misses, not
torn rows (chaos tests over the shm write-intent fault points).
"""

from __future__ import annotations

import multiprocessing
import os
from types import SimpleNamespace

import numpy as np
import pytest

from repro.bench.faults import ChaosPlan
from repro.core.compressor import compressor_registry
from repro.core.data import as_data
from repro.predict.scheme import get_scheme
from repro.serve import decode_array, encode_array
from repro.serve.featcache import FeaturizationCache, content_fingerprint


def make_model(scheme_id, *, bound=1e-3, key=None, **scheme_opts):
    """A LoadedModel stand-in: the cache only touches scheme/compressor."""
    compressor = compressor_registry.create("sz3")
    compressor.set_options({"pressio:abs": bound, "pressio:abs_is_relative": True})
    return SimpleNamespace(
        key=key or f"{scheme_id}-{bound}",
        version="v1",
        scheme=get_scheme(scheme_id, **scheme_opts),
        compressor=compressor,
    )


@pytest.fixture()
def field():
    rng = np.random.default_rng(11)
    return rng.standard_normal((12, 12, 6)).astype(np.float32)


def featurize(model, arr):
    evaluator = model.scheme.req_metrics_opts(model.compressor)
    return dict(evaluator.evaluate(as_data(arr)))


class TestKeying:
    def test_error_agnostic_scheme_is_bound_insensitive(self, field):
        """rahman2023's metrics are all predictors:error_agnostic, so a
        what-if sweep over bounds must hit one cache entry."""
        cache = FeaturizationCache()
        payload = encode_array(field)
        tight = make_model("rahman2023", bound=1e-6, key="a")
        loose = make_model("rahman2023", bound=1e-2, key="b")
        assert cache.key_for(tight, payload) == cache.key_for(loose, payload)

    def test_error_dependent_scheme_is_bound_sensitive(self, field):
        """jin2022's stage probe is predictors:error_dependent: its rows
        genuinely differ across bounds, so the keys must too."""
        cache = FeaturizationCache()
        payload = encode_array(field)
        tight = make_model("jin2022", bound=1e-6, key="a")
        loose = make_model("jin2022", bound=1e-2, key="b")
        assert cache.key_for(tight, payload) != cache.key_for(loose, payload)

    def test_nondeterministic_metric_bypasses(self, field):
        """underwood2023 declares its SVD sketch nondeterministic — a
        cached row could not be bit-identical, so the cache refuses."""
        cache = FeaturizationCache()
        model = make_model("underwood2023")
        assert cache.model_signature(model) is None
        assert cache.key_for(model, encode_array(field)) is None

    def test_content_hash_separates_fields_and_layouts(self, field):
        cache = FeaturizationCache()
        model = make_model("rahman2023")
        other = field + 1.0
        assert cache.key_for(model, encode_array(field)) != cache.key_for(
            model, encode_array(other)
        )
        # Same bytes, different shape: distinct features, distinct key.
        reshaped = field.reshape(6, 12, 12)
        assert cache.key_for(model, encode_array(field)) != cache.key_for(
            model, encode_array(reshaped)
        )

    def test_fingerprint_covers_dtype_tags(self, field):
        a = encode_array(field)
        b = encode_array(field.astype(np.float64))
        assert content_fingerprint(a) != content_fingerprint(b)

    def test_scheme_options_are_key_relevant(self, field):
        cache = FeaturizationCache()
        payload = encode_array(field)
        shallow = make_model("rahman2023", key="a", n_estimators=5)
        deep = make_model("rahman2023", key="b", n_estimators=50)
        assert cache.key_for(shallow, payload) != cache.key_for(deep, payload)


class TestGoldenHits:
    def test_l1_hit_is_bit_identical(self, field):
        cache = FeaturizationCache()
        model = make_model("rahman2023")
        payload = encode_array(field)
        key = cache.key_for(model, payload)
        fresh = featurize(model, decode_array(payload))
        cache.put(key, fresh, cost_s=0.01, source_nbytes=field.nbytes)
        hit = cache.get(key)
        assert hit is not None and hit.tier == "l1"
        assert hit.row == fresh  # exact equality, not approx
        assert cache.counters["l1_hits"] == 1

    def test_l2_hit_is_bit_identical_across_instances(self, field, tmp_path):
        """A row stored by one cache (worker) is a golden hit for a
        second cache over the same ledger directory — the fleet case."""
        shared = str(tmp_path / "store")
        writer = FeaturizationCache(shared_dir=shared)
        reader = FeaturizationCache(shared_dir=shared)
        model = make_model("rahman2023")
        payload = encode_array(field)
        key = writer.key_for(model, payload)
        fresh = featurize(model, decode_array(payload))
        writer.put(key, fresh, cost_s=0.02, source_nbytes=field.nbytes)
        hit = reader.get(key)
        assert hit is not None and hit.tier == "l2"
        assert hit.row == fresh
        assert hit.cost_s == 0.02
        assert hit.source_nbytes == field.nbytes
        # Promoted into the reader's L1: the next hit is local.
        assert reader.get(key).tier == "l1"
        reader.close()
        writer.sweep()
        writer.close()

    def test_miss_and_store_counters(self, field):
        cache = FeaturizationCache()
        model = make_model("rahman2023")
        key = cache.key_for(model, encode_array(field))
        assert cache.get(key) is None
        cache.put(key, {"m": 1.0}, cost_s=0.0, source_nbytes=1)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["l1_entries"] == 1


class TestCapacity:
    def test_l1_lru_eviction(self):
        cache = FeaturizationCache(capacity=2)
        for i in range(4):
            cache.put(f"k{i}", {"m": float(i)}, cost_s=0.0, source_nbytes=1)
        assert cache.stats()["l1_entries"] == 2
        assert cache.counters["l1_evictions"] == 2
        assert cache.get("k0") is None
        assert cache.get("k3").row == {"m": 3.0}

    def test_l2_byte_budget_evicts_oldest(self, tmp_path):
        cache = FeaturizationCache(
            shared_dir=str(tmp_path / "store"), shared_capacity_bytes=2048
        )
        big_row = {"m": 0.0, "pad": "x" * 400}
        for i in range(8):
            cache.put(f"k{i}", dict(big_row, m=float(i)), cost_s=0.0, source_nbytes=1)
        stats = cache.stats()
        assert stats["l2_evictions"] > 0
        assert stats["l2_bytes"] <= 2048
        cache.sweep()
        cache.close()


class TestCrashSafety:
    @pytest.mark.parametrize("point", ["intent", "segment", "filled"])
    def test_writer_killed_mid_store_does_not_poison(self, field, tmp_path, point):
        """Kill a worker process at each shm publish fault point: the
        survivors must see clean misses (never torn rows), and the key
        must become publishable again after the stale-intent window."""
        shared = str(tmp_path / "store")
        plan = ChaosPlan(
            cache_kill_rate=1.0, seed=3, state_dir=str(tmp_path / "chaos")
        )
        model = make_model("rahman2023")
        payload = encode_array(field)
        fresh = featurize(model, decode_array(payload))

        def victim():
            def hook(at, key):
                if at == point and plan.loop_fault("cache_kill", f"{at}:{key}"):
                    os._exit(1)

            cache = FeaturizationCache(
                shared_dir=shared, track=False, fault_hook=hook
            )
            key = cache.key_for(model, payload)
            cache.put(key, fresh, cost_s=0.01, source_nbytes=field.nbytes)
            os._exit(0)  # fault did not fire (should not happen)

        proc = multiprocessing.get_context("fork").Process(target=victim)
        proc.start()
        proc.join(30)
        assert proc.exitcode == 1, "victim must die at the fault point"

        survivor = FeaturizationCache(
            shared_dir=shared, stale_intent_seconds=0.0, attach_timeout=0.1
        )
        key = survivor.key_for(model, payload)
        # Never a torn row: either a clean miss or (point == "filled",
        # where the ledger rename never happened) still a miss.
        assert survivor.get(key) is None
        # The key recovers: the first store after the crash reclaims the
        # dead writer's stale intent (serving a private copy meanwhile),
        # and the next store republishes into the shared tier.
        survivor.put(key, fresh, cost_s=0.01, source_nbytes=field.nbytes)
        survivor.put(key, fresh, cost_s=0.01, source_nbytes=field.nbytes)
        survivor._l1.clear()  # force the next read through L2
        hit = survivor.get(key)
        assert hit is not None and hit.tier == "l2"
        assert hit.row == fresh
        survivor.sweep()
        survivor.close()

    def test_alien_blob_is_a_miss(self, tmp_path):
        """A segment holding bytes the wrapper cannot decode (torn write,
        foreign writer) must read as a miss, not an exception."""
        cache = FeaturizationCache(shared_dir=str(tmp_path / "store"))
        garbage = np.frombuffer(b"not json at all", dtype=np.uint8)
        _, info = cache._shm.publish("poisoned", garbage)
        if info.name:
            cache._shm.release("poisoned")
        assert cache.get("poisoned") is None
        assert cache.counters["misses"] == 1
        cache.sweep()
        cache.close()
