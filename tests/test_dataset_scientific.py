"""Tests for the non-weather scientific dataset generators."""

import numpy as np
import pytest

from repro.compressors import make_compressor
from repro.dataset import (
    ALL_SCIENTIFIC,
    CESMDataset,
    NyxDataset,
    S3DDataset,
    TurbulenceDataset,
    dataset_registry,
    make_scientific_suite,
)


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", ALL_SCIENTIFIC)
    def test_registered(self, name):
        assert name in dataset_registry

    def test_suite_construction(self):
        suite = make_scientific_suite(timesteps=2)
        assert set(suite) == set(ALL_SCIENTIFIC)
        for ds in suite.values():
            assert len(ds) == len(ds.fields) * 2

    @pytest.mark.parametrize(
        "cls,shape",
        [
            (CESMDataset, (24, 36)),
            (NyxDataset, (12, 12, 12)),
            (S3DDataset, (16, 16, 8)),
            (TurbulenceDataset, (12, 12, 12)),
        ],
    )
    def test_deterministic(self, cls, shape):
        a = cls(shape=shape, timesteps=2, seed=3).load_data(0).array
        b = cls(shape=shape, timesteps=2, seed=3).load_data(0).array
        assert np.array_equal(a, b)
        c = cls(shape=shape, timesteps=2, seed=4).load_data(0).array
        assert not np.array_equal(a, c)

    @pytest.mark.parametrize(
        "cls,shape",
        [
            (CESMDataset, (24, 36)),
            (NyxDataset, (12, 12, 12)),
            (S3DDataset, (16, 16, 8)),
            (TurbulenceDataset, (12, 12, 12)),
        ],
    )
    def test_metadata_and_finiteness(self, cls, shape):
        ds = cls(shape=shape, timesteps=2)
        for i in range(len(ds)):
            meta = ds.load_metadata(i)
            assert meta["shape"] == shape
            data = ds.load_data(i)
            assert np.isfinite(data.array).all()
            assert data.dtype == np.float32

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            NyxDataset(shape=(8, 8, 8), fields=["dark_energy"])

    def test_wrong_dimensionality_rejected(self):
        with pytest.raises(ValueError):
            CESMDataset(shape=(8, 8, 8))
        with pytest.raises(ValueError):
            NyxDataset(shape=(8, 8))


class TestStructuralContrasts:
    """Each family must exhibit the pattern it was built to stress."""

    def test_nyx_dynamic_range(self):
        rho = NyxDataset(shape=(16, 16, 16), timesteps=1).load_data(0).array
        assert rho.min() > 0
        assert rho.max() / rho.min() > 1e4  # log-normal web

    def test_s3d_oh_is_sparse(self):
        ds = S3DDataset(shape=(24, 24, 12), timesteps=1)
        oh = ds.load_data(ds.fields.index("oh_mass_fraction")).array
        assert (oh == 0).mean() > 0.5

    def test_s3d_temperature_has_sharp_front(self):
        ds = S3DDataset(shape=(24, 24, 12), timesteps=1)
        temp = ds.load_data(ds.fields.index("temperature")).array
        grad = np.abs(np.diff(temp, axis=0))
        # Max gradient dwarfs the median: the flame sheet.
        assert grad.max() > 20 * (np.median(grad) + 1e-9)

    def test_cesm_cloud_fraction_bounded(self):
        ds = CESMDataset(shape=(24, 36), timesteps=1)
        cld = ds.load_data(ds.fields.index("CLDTOT")).array
        assert cld.min() >= 0.0 and cld.max() <= 1.0

    def test_turbulence_least_compressible(self):
        """Kolmogorov-rough turbulence compresses worse than CESM's
        smooth climate slices at the same relative bound."""

        def mean_cr(ds) -> float:
            crs = []
            for i in range(len(ds)):
                data = ds.load_data(i)
                arr = data.array
                vr = float(arr.max() - arr.min()) or 1.0
                comp = make_compressor("sz3", pressio__abs=1e-4 * vr)
                crs.append(arr.nbytes / comp.compress(data).nbytes)
            return float(np.mean(crs))

        turb = TurbulenceDataset(shape=(16, 16, 16), timesteps=1, fields=["u"])
        cesm = CESMDataset(shape=(32, 32), timesteps=1, fields=["PSL"])
        assert mean_cr(cesm) > mean_cr(turb)

    def test_cross_dataset_bench_integration(self):
        """The bench runner consumes a non-weather dataset unchanged."""
        from repro.bench import ExperimentRunner

        ds = S3DDataset(shape=(12, 12, 8), timesteps=2)
        runner = ExperimentRunner(
            ds, compressors=("szx",), bounds=(1e-4,), schemes=("khan2023",), n_folds=2
        )
        obs, stats, _ = runner.collect()
        assert stats.failed == 0
        assert len(obs) == len(ds)
        rows = runner.table2(obs)
        khan = next(r for r in rows if r.method == "khan2023")
        assert khan.medape_pct == khan.medape_pct  # not NaN
