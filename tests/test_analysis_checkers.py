"""Per-checker regression fixtures for repro-lint.

Every rule gets one seeded-bad snippet (asserting rule id *and* line)
and one known-good counterpart that must stay quiet, plus the
suppression-comment contract and the runtime lock-order witness.
"""

from __future__ import annotations

import textwrap
import threading

import pytest

from repro.analysis import LockOrderViolation, LockOrderWitness
from repro.analysis.base import ModuleInfo
from repro.analysis.engine import run_modules


def lint(*sources: str, paths: tuple[str, ...] | None = None):
    modules = []
    for i, source in enumerate(sources):
        path = paths[i] if paths else f"fixture_{i}.py"
        modules.append(ModuleInfo.parse(path, textwrap.dedent(source)))
    return run_modules(modules)


def bad_line(source: str, marker: str = "# BAD") -> int:
    """1-based line of the seeded defect."""
    for lineno, text in enumerate(textwrap.dedent(source).splitlines(), start=1):
        if marker in text:
            return lineno
    raise AssertionError(f"fixture is missing a {marker} marker")


def hits(report, rule_id: str) -> list[int]:
    return [f.line for f in report.active() if f.rule.id == rule_id]


# -- RL101 guarded-attr-unlocked -----------------------------------------------

RL101_BAD = """\
    import threading

    class Ledger:
        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}  # guarded-by: _lock

        def record(self, key):
            self._entries[key] = 1  # BAD
"""

RL101_GOOD = """\
    import threading

    class Ledger:
        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}  # guarded-by: _lock

        def record(self, key):
            with self._lock:
                self._entries[key] = 1

        def drop_locked(self, key):
            self._entries.pop(key, None)
"""


class TestLockDiscipline:
    def test_unlocked_mutation_is_flagged(self):
        report = lint(RL101_BAD)
        assert hits(report, "RL101") == [bad_line(RL101_BAD)]

    def test_locked_mutation_and_locked_suffix_pass(self):
        assert lint(RL101_GOOD).clean

    def test_mutator_method_call_counts_as_mutation(self):
        src = """\
            import threading

            class Ledger:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}  # guarded-by: _lock

                def evict(self, key):
                    self._entries.pop(key, None)  # BAD
        """
        assert hits(lint(src), "RL101") == [bad_line(src)]

    def test_unannotated_attributes_are_not_policed(self):
        src = """\
            class Plain:
                def __init__(self):
                    self._entries = {}

                def record(self, key):
                    self._entries[key] = 1
        """
        assert lint(src).clean


# -- RL102 blocking-call-under-lock --------------------------------------------

RL102_BAD = """\
    import time
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()

        def flush(self):
            with self._lock:
                time.sleep(0.1)  # BAD
"""

RL102_GOOD = """\
    import time
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()

        def flush(self):
            with self._lock:
                batch = [1, 2, 3]
            time.sleep(0.1)
"""


class TestBlockingUnderLock:
    def test_sleep_under_lock_is_flagged(self):
        report = lint(RL102_BAD)
        assert hits(report, "RL102") == [bad_line(RL102_BAD)]

    def test_sleep_after_release_passes(self):
        assert lint(RL102_GOOD).clean

    def test_commit_under_lock_is_flagged(self):
        src = """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def flush(self, db):
                    with self._lock:
                        db.commit()  # BAD
        """
        assert hits(lint(src), "RL102") == [bad_line(src)]

    def test_condvar_protocol_calls_are_not_blocking(self):
        src = """\
            import threading

            def drain(cond, jobs):
                with cond:
                    while not jobs:
                        cond.wait()
                    cond.notify_all()
                    return jobs.pop()
        """
        assert lint(src).clean


# -- RL201 hash-nondeterminism -------------------------------------------------

RL201_BAD = """\
    def options_digest(opts):  # hash-critical
        return _encode(opts)

    def _encode(opts):
        return str(id(opts))  # BAD
"""

RL201_GOOD = """\
    def options_digest(opts):  # hash-critical
        return _encode(opts)

    def _encode(opts):
        return "|".join(f"{k}={opts[k]}" for k in sorted(opts))
"""


class TestHashStability:
    def test_id_reachable_from_root_is_flagged(self):
        report = lint(RL201_BAD)
        assert hits(report, "RL201") == [bad_line(RL201_BAD)]

    def test_sorted_encoding_passes(self):
        assert lint(RL201_GOOD).clean

    def test_unsorted_set_iteration_is_flagged(self):
        src = """\
            def options_digest(opts):  # hash-critical
                out = []
                for key in set(opts):  # BAD
                    out.append(key)
                return out
        """
        assert hits(lint(src), "RL201") == [bad_line(src)]

    def test_nondeterminism_outside_critical_set_is_fine(self):
        src = """\
            def unrelated(opts):
                import time
                return time.time()
        """
        assert lint(src).clean


# -- RL301/RL302 state-codec ---------------------------------------------------

RL301_BAD = """\
    class ForestPredictor:
        def get_state(self):
            return {"params": self.model.get_params()}  # BAD
"""

RL301_GOOD = """\
    class ForestPredictor:
        def get_state(self):
            return {"params": self.model.get_plain_params()}
"""


class TestStateCodec:
    def test_raw_get_params_in_get_state_is_flagged(self):
        report = lint(RL301_BAD)
        assert hits(report, "RL301") == [bad_line(RL301_BAD)]

    def test_plain_params_pass(self):
        assert lint(RL301_GOOD).clean

    def test_set_valued_state_is_flagged(self):
        src = """\
            class ForestPredictor:
                def get_state(self):
                    return {"features": {"a", "b"}}  # BAD
        """
        assert hits(lint(src), "RL302") == [bad_line(src)]

    def test_rules_only_apply_to_predictor_like_classes(self):
        src = """\
            class Inventory:
                def get_state(self):
                    return {"params": self.model.get_params()}
        """
        assert lint(src).clean


# -- RL401/RL402 invalidation vocabulary ---------------------------------------

RL401_BAD = """\
    class SpectralMetric:
        id = "spectral"
        invalidations = ("predictors:error_dependant",)  # BAD
"""

RL401_GOOD = """\
    class SpectralMetric:
        id = "spectral"
        invalidations = ("predictors:error_dependent",)
"""


class TestInvalidationVocabulary:
    def test_typoed_declaration_is_flagged(self):
        report = lint(RL401_BAD)
        assert hits(report, "RL401") == [bad_line(RL401_BAD)]

    def test_fixed_vocabulary_passes(self):
        assert lint(RL401_GOOD).clean

    def test_training_is_request_only(self):
        src = """\
            class SpectralMetric:
                id = "spectral"
                invalidations = ("predictors:training",)  # BAD
        """
        report = lint(src)
        assert hits(report, "RL401") == [bad_line(src)]
        [finding] = [f for f in report.active() if f.rule.id == "RL401"]
        assert "request-only" in finding.message

    def test_unknown_metric_request_is_flagged(self):
        src = """\
            class StatMetric:
                id = "stat"
                invalidations = ("predictors:error_agnostic",)

            class FastScheme:
                def feature_keys(self):
                    return ["sttat:std"]  # BAD
        """
        assert hits(lint(src), "RL402") == [bad_line(src)]

    def test_known_metric_and_synthetic_prefixes_pass(self):
        src = """\
            class StatMetric:
                id = "stat"
                invalidations = ("predictors:error_agnostic",)

            class FastScheme:
                target_key = "stat:mean"

                def feature_keys(self):
                    return ["stat:std", "config:log_bound", "derived:gain"]
        """
        assert lint(src).clean

    def test_instance_level_metric_ids_join_the_universe(self):
        src = """\
            class ProbeMetric:
                id = "probe"
                invalidations = ("predictors:error_dependent",)

                def __init__(self, sampled=False):
                    if sampled:
                        self.id = "probe_sampled"

            class FastScheme:
                def feature_keys(self):
                    return ["probe_sampled:bits"]
        """
        assert lint(src).clean


# -- RL501 resource-leak -------------------------------------------------------

RL501_BAD = """\
    import sqlite3

    def count(path):
        conn = sqlite3.connect(path)  # BAD
        cur = conn.execute("SELECT COUNT(*) FROM results")
        return cur.fetchone()[0]
"""

RL501_GOOD = """\
    import sqlite3

    def count(path):
        conn = sqlite3.connect(path)
        try:
            cur = conn.execute("SELECT COUNT(*) FROM results")
            return cur.fetchone()[0]
        finally:
            conn.close()
"""


class TestResourceLifecycle:
    def test_unreleased_connection_is_flagged(self):
        report = lint(RL501_BAD)
        assert hits(report, "RL501") == [bad_line(RL501_BAD)]

    def test_try_finally_close_passes(self):
        assert lint(RL501_GOOD).clean

    def test_ownership_transfers_are_not_leaks(self):
        src = """\
            from multiprocessing.shared_memory import SharedMemory

            def attach(self, name, registry):
                seg = SharedMemory(name=name)
                registry[name] = seg

            def open_segment(name):
                seg = SharedMemory(name=name)
                return seg

            def hand_off(name, ledger):
                seg = SharedMemory(name=name)
                ledger.adopt(seg)
        """
        assert lint(src).clean

    def test_with_statement_passes(self):
        src = """\
            import sqlite3
            from contextlib import closing

            def count(path):
                conn = sqlite3.connect(path)
                with closing(conn):
                    return conn.execute("SELECT 1").fetchone()
        """
        assert lint(src).clean


# -- RL502 resource-leak-across-call ---------------------------------------------

RL502_BAD = """\
    from multiprocessing.shared_memory import SharedMemory

    def log_segment(handle):
        print(handle.name, handle.size)

    def inspect(name):
        seg = SharedMemory(name=name)
        log_segment(seg)  # BAD
"""

RL502_GOOD_OWNER = """\
    from multiprocessing.shared_memory import SharedMemory

    REGISTRY = {}

    def adopt(handle):
        REGISTRY["seg"] = handle

    def inspect(name):
        seg = SharedMemory(name=name)
        adopt(seg)
"""

RL502_GOOD_CLOSER = """\
    from multiprocessing.shared_memory import SharedMemory

    def consume(handle):
        try:
            print(handle.name)
        finally:
            handle.close()

    def inspect(name):
        seg = SharedMemory(name=name)
        consume(seg)
"""


class TestResourceLifecycleAcrossCalls:
    def test_callee_that_drops_the_handle_is_flagged(self):
        report = lint(RL502_BAD)
        assert hits(report, "RL502") == [bad_line(RL502_BAD)]
        assert hits(report, "RL501") == []

    def test_callee_that_stores_the_handle_passes(self):
        assert lint(RL502_GOOD_OWNER).clean

    def test_callee_that_closes_the_handle_passes(self):
        assert lint(RL502_GOOD_CLOSER).clean

    def test_release_at_caller_beats_the_drop(self):
        src = """\
            from multiprocessing.shared_memory import SharedMemory

            def log_segment(handle):
                print(handle.name)

            def inspect(name):
                seg = SharedMemory(name=name)
                try:
                    log_segment(seg)
                finally:
                    seg.close()
        """
        assert lint(src).clean

    def test_unresolvable_callee_stays_quiet(self):
        # Method calls and names with no (or multiple) project
        # definitions cannot be proven non-owning: old escape semantics.
        src = """\
            from multiprocessing.shared_memory import SharedMemory

            def inspect(name, ledger):
                seg = SharedMemory(name=name)
                ledger.adopt(seg)

            def inspect2(name):
                seg = SharedMemory(name=name)
                unknown_external(seg)
        """
        assert lint(src).clean

    def test_callee_forwarding_past_one_level_stays_quiet(self):
        src = """\
            from multiprocessing.shared_memory import SharedMemory

            def deeper(handle):
                print(handle.name)

            def forward(handle):
                deeper(handle)

            def inspect(name):
                seg = SharedMemory(name=name)
                forward(seg)
        """
        assert lint(src).clean

    def test_handle_inside_expression_stays_quiet(self):
        src = """\
            from multiprocessing.shared_memory import SharedMemory

            def log_all(handles):
                print(handles)

            def inspect(name):
                seg = SharedMemory(name=name)
                log_all([seg])
        """
        assert lint(src).clean

    def test_cross_module_resolution(self):
        provider = """\
            from multiprocessing.shared_memory import SharedMemory

            def open_and_report(name):
                seg = SharedMemory(name=name)
                report(seg)  # BAD
        """
        library = """\
            def report(handle):
                print(handle.name, handle.size)
        """
        report = lint(provider, library, paths=("provider.py", "library.py"))
        assert hits(report, "RL502") == [bad_line(provider)]


# -- suppressions --------------------------------------------------------------


class TestSuppressions:
    def test_same_line_suppression_silences(self):
        src = RL101_BAD.replace(
            "# BAD", "# repro-lint: disable=RL101  # swept by owner thread"
        )
        report = lint(src)
        assert not report.active()
        assert [f.rule.id for f in report.suppressed()] == ["RL101"]

    def test_standalone_comment_covers_next_line(self):
        src = """\
            import threading

            class Ledger:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}  # guarded-by: _lock

                def record(self, key):
                    # repro-lint: disable=guarded-attr-unlocked
                    self._entries[key] = 1
        """
        report = lint(src)
        assert not report.active()
        assert len(report.suppressed()) == 1

    def test_file_wide_suppression(self):
        src = "# repro-lint: disable-file=RL102\n" + textwrap.dedent(RL102_BAD)
        report = run_modules([ModuleInfo.parse("fixture.py", src)])
        assert not report.active()
        assert len(report.suppressed()) == 1

    def test_suppression_does_not_hide_other_rules(self):
        src = RL101_BAD.replace("# BAD", "# repro-lint: disable=RL102")
        report = lint(src)
        assert hits(report, "RL101") == [bad_line(src, "disable=RL102")]

    def test_unknown_rule_token_is_surfaced(self):
        src = "x = 1  # repro-lint: disable=RL999\n"
        report = lint(src)
        assert report.unknown_suppressions == [("fixture_0.py", 1, "RL999")]


# -- syntax errors -------------------------------------------------------------


def test_syntax_error_yields_rl000():
    report = lint("def broken(:\n")
    assert [f.rule.id for f in report.active()] == ["RL000"]


# -- lock-order witness --------------------------------------------------------


class TestLockOrderWitness:
    def _cross_acquire(self, first, second):
        def worker():
            with first:
                with second:
                    pass

        t = threading.Thread(target=worker)
        t.start()
        t.join(10)

    def test_cycle_is_detected(self):
        witness = LockOrderWitness()
        a = witness.wrap(name="ledger")
        b = witness.wrap(name="stats")
        self._cross_acquire(a, b)
        self._cross_acquire(b, a)
        with pytest.raises(LockOrderViolation) as exc:
            witness.assert_acyclic()
        assert set(exc.value.cycle) == {"ledger", "stats"}

    def test_consistent_order_is_acyclic(self):
        witness = LockOrderWitness()
        a = witness.wrap(name="ledger")
        b = witness.wrap(name="stats")
        self._cross_acquire(a, b)
        self._cross_acquire(a, b)
        witness.assert_acyclic()
        assert witness.edges() == {("ledger", "stats")}

    def test_rlock_reentry_is_not_a_cycle(self):
        witness = LockOrderWitness()
        a = witness.wrap(threading.RLock(), name="ledger")
        with a:
            with a:
                pass
        witness.assert_acyclic()
        assert witness.edges() == set()

    def test_check_on_acquire_raises_at_the_closing_edge(self):
        witness = LockOrderWitness(check_on_acquire=True)
        a = witness.wrap(name="ledger")
        b = witness.wrap(name="stats")
        self._cross_acquire(a, b)
        with b:
            with pytest.raises(LockOrderViolation):
                a.acquire()
            a.release()  # acquire succeeded before the check fired


# -- RL601 blocking-call-in-async ----------------------------------------------

RL601_BAD = """\
    import time

    async def refresh_loop(interval):
        time.sleep(interval)  # BAD
"""

RL601_VIA_BAD = """\
    import time

    def warm_cache():
        time.sleep(0.5)

    async def handle(request):
        warm_cache()  # BAD
"""

RL601_GOOD = """\
    import asyncio
    import time

    async def refresh_loop(interval):
        await asyncio.sleep(interval)
        await asyncio.to_thread(time.sleep, interval)

    async def drain(state_lock):
        state_lock.acquire(timeout=1.0)
"""


class TestAsyncBlockingCall:
    def test_direct_blocking_call_is_flagged(self):
        report = lint(RL601_BAD)
        assert hits(report, "RL601") == [bad_line(RL601_BAD)]

    def test_blocking_call_behind_sync_helper_is_flagged_at_the_call_site(self):
        report = lint(RL601_VIA_BAD)
        assert hits(report, "RL601") == [bad_line(RL601_VIA_BAD)]
        (finding,) = [f for f in report.active() if f.rule.id == "RL601"]
        assert "via 'warm_cache()'" in finding.message

    def test_untimed_lock_acquire_on_the_loop_is_flagged(self):
        src = """\
            async def drain(state_lock):
                state_lock.acquire()  # BAD
        """
        report = lint(src)
        assert hits(report, "RL601") == [bad_line(src)]

    def test_store_disk_methods_on_the_loop_are_flagged(self):
        # The serve/server.py 'models' op regression: registry listing
        # stat'ing version directories from the event-loop thread.
        src = """\
            class Handler:
                def __init__(self, registry):
                    self.registry = registry

                async def models(self):
                    return [self.registry.describe(k) for k in self.registry.keys()]  # BAD
        """
        report = lint(src)
        line = bad_line(src)
        assert hits(report, "RL601") == [line, line]  # describe and keys

    def test_awaited_and_to_thread_shipped_calls_pass(self):
        assert lint(RL601_GOOD).clean


# -- RL602 unawaited-coroutine -------------------------------------------------

RL602_BAD = """\
    async def persist(row):
        return row

    def shutdown_hook(rows):
        for row in rows:
            persist(row)  # BAD
"""

RL602_GOOD = """\
    import asyncio

    async def persist(row):
        return row

    async def main(rows):
        for row in rows:
            await persist(row)
        task = asyncio.create_task(persist({}))
        await task
"""


class TestUnawaitedCoroutine:
    def test_bare_statement_call_is_flagged(self):
        report = lint(RL602_BAD)
        assert hits(report, "RL602") == [bad_line(RL602_BAD)]

    def test_awaited_and_task_wrapped_calls_pass(self):
        assert lint(RL602_GOOD).clean


# -- RL603 loop-owned-cross-thread ---------------------------------------------

RL603_BAD = """\
    import asyncio

    class Server:
        def __init__(self):
            self.stats = {}  # loop-owned

        async def handle(self, request):
            await asyncio.to_thread(self._featurize, request)

        def _featurize(self, request):
            self._bump()
            return request

        def _bump(self):
            self.stats["served"] = 1  # BAD
"""

RL603_GOOD = """\
    import asyncio

    class Server:
        def __init__(self):
            self.stats = {}  # loop-owned

        async def handle(self, request):
            served = await asyncio.to_thread(self._featurize, request)
            self.stats["served"] = served

        def _featurize(self, request):
            return 1
"""


class TestLoopOwnedCrossThread:
    def test_owned_attr_touched_in_shipped_closure_is_flagged(self):
        # The touch is two hops off the loop: handle ships _featurize,
        # _featurize calls _bump, _bump touches the loop-owned attr.
        report = lint(RL603_BAD)
        assert hits(report, "RL603") == [bad_line(RL603_BAD)]
        (finding,) = [f for f in report.active() if f.rule.id == "RL603"]
        assert "shipped via to_thread" in finding.message

    def test_worker_returning_a_value_for_the_loop_to_apply_passes(self):
        assert lint(RL603_GOOD).clean


# -- RL701 fork-unsafe-handle-to-child -----------------------------------------

RL701_BAD = """\
    import sqlite3
    from multiprocessing import Process

    def launch(path, target):
        db = sqlite3.connect(path)
        worker = Process(target=target, args=(db,))  # BAD
        worker.start()
        return worker
"""

RL701_GOOD = """\
    from multiprocessing import Process

    def launch(path, target):
        worker = Process(target=target, args=(path,))
        worker.start()
        return worker
"""


class TestForkUnsafeHandle:
    def test_live_handle_in_child_args_is_flagged(self):
        report = lint(RL701_BAD)
        line = bad_line(RL701_BAD)
        assert hits(report, "RL701") == [line]
        # The open connection also makes the spawn site itself unsafe.
        assert hits(report, "RL702") == [line]

    def test_passing_the_path_instead_passes(self):
        assert lint(RL701_GOOD).clean


# -- RL702 fork-with-live-state ------------------------------------------------

RL702_BAD = """\
    import threading
    from multiprocessing import Process

    def launch(loop_fn, target):
        pump = threading.Thread(target=loop_fn)
        pump.start()
        child = Process(target=target)  # BAD
        child.start()
        return pump, child
"""

RL702_VIA_BAD = """\
    from multiprocessing import Process

    class Fleet:
        def _spawn(self, wid):
            return Process(target=wid)

        def start(self, state_lock):
            with state_lock:
                self._spawn(1)  # BAD
"""

RL702_GOOD = """\
    import threading
    from multiprocessing import Process

    def launch(loop_fn, target, path):
        pump = threading.Thread(target=loop_fn)
        pump.start()
        pump.join()
        fh = open(path)
        fh.close()
        child = Process(target=target)
        child.start()
        return child
"""


class TestForkWithLiveState:
    def test_spawn_with_running_thread_is_flagged(self):
        report = lint(RL702_BAD)
        assert hits(report, "RL702") == [bad_line(RL702_BAD)]
        (finding,) = [f for f in report.active() if f.rule.id == "RL702"]
        assert "running thread 'pump'" in finding.message

    def test_spawn_under_lock_via_helper_is_flagged_at_the_helper_call(self):
        report = lint(RL702_VIA_BAD)
        assert hits(report, "RL702") == [bad_line(RL702_VIA_BAD)]
        (finding,) = [f for f in report.active() if f.rule.id == "RL702"]
        assert "via '_spawn()'" in finding.message
        assert "held lock(s) 'state_lock'" in finding.message

    def test_spawn_inside_async_def_is_flagged(self):
        src = """\
            from concurrent.futures import ProcessPoolExecutor

            async def scale_out():
                pool = ProcessPoolExecutor()  # BAD
                return pool
        """
        report = lint(src)
        assert hits(report, "RL702") == [bad_line(src)]
        (finding,) = [f for f in report.active() if f.rule.id == "RL702"]
        assert "running event loop" in finding.message

    def test_joined_thread_and_closed_handles_pass(self):
        assert lint(RL702_GOOD).clean
