"""Tests for the interpolation predictor and the SPERR wavelet codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.compressors import make_compressor
from repro.compressors.interp import (
    _stage_plan,
    interp_decode,
    interp_encode,
    interp_symbol_count,
)
from repro.compressors.wavelet import (
    dwt53_forward_axis,
    dwt53_inverse_axis,
    wavelet_forward,
    wavelet_inverse,
)


def max_err(a, b) -> float:
    return float(np.abs(np.asarray(a, np.float64) - np.asarray(b, np.float64)).max())


class TestInterpPredictor:
    @pytest.mark.parametrize("shape", [(64,), (40, 24), (17, 9), (16, 16, 8), (7, 13, 3), (1,)])
    def test_symbol_roundtrip(self, shape):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(shape)
        eb = 1e-3
        symbols = interp_encode(data, eb)
        assert symbols.size == interp_symbol_count(shape)
        recon = interp_decode(symbols, shape, eb)
        assert recon.shape == shape
        assert max_err(data, recon) <= eb

    def test_bound_holds_per_point(self):
        """Reconstruction feedback: the bound holds even on rough data
        where interpolation predicts poorly."""
        rng = np.random.default_rng(1)
        data = rng.standard_normal((31, 17)) * 100
        eb = 1e-2
        recon = interp_decode(interp_encode(data, eb), data.shape, eb)
        assert max_err(data, recon) <= eb

    def test_smooth_data_small_residuals(self, smooth_field):
        from repro.compressors.sz3 import quantize

        data = smooth_field.astype(np.float64)
        symbols = interp_encode(data, 1e-3)
        direct = quantize(data, 1e-3)
        # Interpolation residuals are far smaller than the raw
        # quantization codes (the predictor removes the smooth trend).
        assert np.abs(symbols).mean() < 0.1 * np.abs(direct).mean()

    def test_stage_plan_covers_every_point(self):
        shape = (13, 7)
        covered = np.zeros(shape, dtype=int)
        covered[::16, ::16] += 1  # anchors
        dummy = np.zeros(shape, dtype=int)
        for _s, _axis, slices in _stage_plan(shape, 16):
            dummy[slices] += 1
            covered[slices] += 1
        assert (covered == 1).all()  # each point written exactly once

    def test_truncated_stream_raises(self):
        from repro.core import CorruptStreamError

        data = np.random.default_rng(2).standard_normal((16, 16))
        symbols = interp_encode(data, 1e-3)
        with pytest.raises(CorruptStreamError):
            interp_decode(symbols[:-5], data.shape, 1e-3)
        with pytest.raises(CorruptStreamError):
            interp_decode(np.concatenate([symbols, [0]]), data.shape, 1e-3)

    def test_codec_integration(self, smooth_field):
        comp = make_compressor("sz3", pressio__abs=1e-3)
        comp.set_options({"sz3:predictor": "interp"})
        stream, recon = comp.roundtrip(smooth_field)
        assert recon.shape == smooth_field.shape
        assert max_err(smooth_field, recon.array) <= 1e-3 * 1.0001

    def test_interp_beats_lorenzo_on_smooth(self, smooth_field):
        lorenzo = make_compressor("sz3", pressio__abs=1e-3)
        interp = make_compressor("sz3", pressio__abs=1e-3)
        interp.set_options({"sz3:predictor": "interp"})
        cr_l = smooth_field.nbytes / lorenzo.compress(smooth_field).nbytes
        cr_i = smooth_field.nbytes / interp.compress(smooth_field).nbytes
        assert cr_i > cr_l * 0.9  # at least competitive; usually better

    def test_max_stride_option(self, smooth_field):
        comp = make_compressor("sz3", pressio__abs=1e-3)
        comp.set_options({"sz3:predictor": "interp", "sz3:interp_max_stride": 4})
        recon = comp.decompress(comp.compress(smooth_field))
        assert max_err(smooth_field, recon.array) <= 1e-3 * 1.0001

    @given(
        data=arrays(
            np.float32,
            array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=10),
            elements=st.floats(-100, 100, width=32),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_bound_property(self, data):
        comp = make_compressor("sz3", pressio__abs=1e-2)
        comp.set_options({"sz3:predictor": "interp"})
        recon = comp.decompress(comp.compress(data)).array
        if data.size:
            assert max_err(data, recon) <= 1e-2 * 1.001 + 1e-4


class TestWavelet:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 8, 9, 17])
    def test_axis_lifting_invertible(self, n):
        rng = np.random.default_rng(3)
        arr = rng.integers(-10000, 10000, size=(n, 4)).astype(np.int64)
        original = arr.copy()
        dwt53_forward_axis(arr, 0)
        dwt53_inverse_axis(arr, 0)
        assert np.array_equal(arr, original)

    @pytest.mark.parametrize("shape", [(16,), (9, 7), (16, 16, 8), (5, 3, 2), (1, 1)])
    @pytest.mark.parametrize("levels", [1, 2, 4])
    def test_multilevel_invertible(self, shape, levels):
        rng = np.random.default_rng(4)
        codes = rng.integers(-(2**20), 2**20, size=shape)
        assert np.array_equal(wavelet_inverse(wavelet_forward(codes, levels), levels), codes)

    def test_transform_decorrelates_smooth(self, smooth_field):
        from repro.compressors.sz3 import quantize

        codes = quantize(smooth_field.astype(np.float64), 1e-4)
        coeffs = wavelet_forward(codes, 3)
        # Detail coefficients (everything outside the coarsest corner)
        # should be much smaller than the original codes on average.
        assert np.abs(coeffs).mean() < np.abs(codes).mean()

    def test_codec_roundtrip_bound(self, smooth_field, sparse_field, rough_field):
        for data in (smooth_field, sparse_field, rough_field):
            comp = make_compressor("sperr", pressio__abs=1e-3)
            recon = comp.decompress(comp.compress(data)).array
            assert max_err(data, recon) <= 1e-3 * 1.0001

    @pytest.mark.parametrize("shape", [(1,), (3,), (5, 7), (2, 3, 5)])
    def test_odd_shapes(self, shape):
        rng = np.random.default_rng(5)
        data = rng.standard_normal(shape).astype(np.float32)
        comp = make_compressor("sperr", pressio__abs=1e-3)
        recon = comp.decompress(comp.compress(data))
        assert recon.shape == shape
        assert max_err(data, recon.array) <= 1e-3 * 1.001

    def test_sperr_best_on_smooth(self, smooth_field):
        """The wavelet coder should lead on smooth data (its niche)."""
        ratios = {}
        for name in ("sz3", "zfp", "sperr"):
            comp = make_compressor(name, pressio__abs=1e-3)
            ratios[name] = smooth_field.nbytes / comp.compress(smooth_field).nbytes
        assert ratios["sperr"] >= ratios["zfp"]

    def test_levels_option(self, smooth_field):
        shallow = make_compressor("sperr", pressio__abs=1e-3)
        shallow.set_options({"sperr:levels": 1})
        deep = make_compressor("sperr", pressio__abs=1e-3)
        deep.set_options({"sperr:levels": 4})
        for comp in (shallow, deep):
            recon = comp.decompress(comp.compress(smooth_field)).array
            assert max_err(smooth_field, recon) <= 1e-3 * 1.0001


class TestKhanOnSperr:
    def test_khan_supports_sperr(self, smooth_field):
        from repro.core import PressioData, SizeMetrics
        from repro.predict import get_scheme

        comp = make_compressor("sperr", pressio__abs=1e-3)
        scheme = get_scheme("khan2023", fraction=0.2)
        data = PressioData(smooth_field, metadata={"data_id": "s"})
        results = scheme.req_metrics_opts(comp).evaluate(data).to_dict()
        est = scheme.get_predictor(comp).predict(results)
        size = SizeMetrics()
        comp.set_metrics([size])
        comp.compress(data)
        actual = comp.get_metrics_results()["size:compression_ratio"]
        assert actual / 4 <= est <= actual * 4

    def test_tao_supports_sperr(self, smooth_field):
        from repro.core import PressioData
        from repro.predict import get_scheme

        comp = make_compressor("sperr", pressio__abs=1e-3)
        scheme = get_scheme("tao2019")
        data = PressioData(smooth_field, metadata={"data_id": "s"})
        results = scheme.req_metrics_opts(comp).evaluate(data).to_dict()
        assert scheme.get_predictor(comp).predict(results) > 0


class TestZFPRateMode:
    """zfp's fixed-rate mode: a bits/value budget instead of a bound."""

    def test_roundtrip_and_rate_adherence(self, smooth_field):
        comp = make_compressor("zfp")
        comp.set_options({"zfp:mode": "rate", "zfp:rate": 6.0})
        stream = comp.compress(smooth_field)
        recon = comp.decompress(stream)
        assert recon.shape == smooth_field.shape
        bits_per_value = stream.nbytes * 8 / smooth_field.size
        # Packed AC bits target the rate; headers/side channels add some.
        assert bits_per_value < 6.0 * 2.5

    def test_lower_rate_higher_ratio(self, smooth_field):
        ratios = {}
        for rate in (2.0, 6.0, 12.0):
            comp = make_compressor("zfp")
            comp.set_options({"zfp:mode": "rate", "zfp:rate": rate})
            ratios[rate] = smooth_field.nbytes / comp.compress(smooth_field).nbytes
        assert ratios[2.0] > ratios[6.0] > ratios[12.0]

    def test_lower_rate_higher_error(self, smooth_field):
        errs = {}
        for rate in (2.0, 10.0):
            comp = make_compressor("zfp")
            comp.set_options({"zfp:mode": "rate", "zfp:rate": rate})
            recon = comp.decompress(comp.compress(smooth_field)).array
            errs[rate] = float(np.abs(recon - smooth_field).max())
        assert errs[2.0] > errs[10.0]

    def test_unknown_mode_rejected(self, smooth_field):
        from repro.core import OptionError

        comp = make_compressor("zfp")
        comp.set_options({"zfp:mode": "embedded"})
        with pytest.raises(OptionError):
            comp.compress(smooth_field)

    def test_accuracy_mode_unaffected(self, smooth_field):
        comp = make_compressor("zfp", pressio__abs=1e-3)
        recon = comp.decompress(comp.compress(smooth_field)).array
        assert np.abs(recon.astype(np.float64) - smooth_field).max() <= 1e-3 * 1.001
