"""Tests for the task queue: locality scheduling, retries, fault injection."""

import os
import threading
import time
from collections import deque

import pytest

from repro.bench import FaultInjector, LocalityScheduler, Task, TaskQueue
from repro.core import Status, TaskFailedError


def make_tasks(n_data=4, per_data=3):
    tasks = []
    for d in range(n_data):
        for k in range(per_data):
            tasks.append(
                Task(
                    data_index=d,
                    data_id=f"data/{d}",
                    compressor_id="sz3",
                    compressor_options={"pressio:abs": 10.0 ** -(k + 2)},
                    dataset_config={"entry:data_id": f"data/{d}"},
                    replicate=0,
                    nbytes=1 << 20,
                )
            )
    return tasks


class TestLocalityScheduler:
    def test_prefers_cached_data(self):
        sched = LocalityScheduler()
        tasks = make_tasks(n_data=2, per_data=2)
        pending = deque(tasks)
        first = sched.pick(0, pending)  # miss, caches data/0
        second = sched.pick(0, pending)  # should hit data/0 again
        assert first.data_id == second.data_id == "data/0"
        assert sched.stats_hits == 1 and sched.stats_misses == 1

    def test_empty_pending(self):
        assert LocalityScheduler().pick(0, deque()) is None


class TestTaskQueue:
    def test_serial_runs_everything(self):
        tasks = make_tasks()
        results, stats = TaskQueue(1, "serial").run(tasks, lambda t, w: {"ok": 1})
        assert stats.completed == len(tasks)
        assert stats.failed == 0
        assert all(r.ok for r in results)

    def test_locality_rate_high_with_grouped_tasks(self):
        tasks = make_tasks(n_data=4, per_data=5)
        _, stats = TaskQueue(1, "serial").run(tasks, lambda t, w: {})
        # 4 misses (first touch per datum), 16 hits.
        assert stats.locality_hits == 16
        assert stats.locality_rate == pytest.approx(16 / 20)

    def test_thread_engine_completes_all(self):
        tasks = make_tasks(n_data=3, per_data=4)
        results, stats = TaskQueue(3, "thread").run(tasks, lambda t, w: {"w": w})
        assert stats.completed == 12
        assert {r.task.key() for r in results} == {t.key() for t in tasks}

    def test_transient_failure_retried(self):
        tasks = make_tasks(n_data=1, per_data=3)
        fn = FaultInjector(lambda t, w: {"ok": 1}, fail_first_attempt_every=2)
        results, stats = TaskQueue(1, "serial", max_retries=2).run(tasks, fn)
        assert stats.completed == 3
        assert stats.retries == fn.injected > 0

    def test_poisoned_task_reported_not_raised(self):
        tasks = make_tasks(n_data=1, per_data=2)
        poison = {tasks[0].key()}
        fn = FaultInjector(lambda t, w: {"ok": 1}, poison_keys=poison)
        results, stats = TaskQueue(1, "serial", max_retries=1).run(tasks, fn)
        assert stats.completed == 1 and stats.failed == 1
        failed = [r for r in results if not r.ok][0]
        assert "poisoned" in failed.error
        assert failed.attempts == 2  # original + one retry

    def test_on_result_callback_sees_successes(self):
        seen = []
        tasks = make_tasks(n_data=1, per_data=2)
        TaskQueue(1, "serial").run(tasks, lambda t, w: {"x": 1}, on_result=seen.append)
        assert len(seen) == 2 and all(r.ok for r in seen)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            TaskQueue(2, "mpi")

    def test_single_worker_forces_serial(self):
        q = TaskQueue(1, "thread")
        assert q.engine == "serial"

    def test_single_worker_downgrade_warns_and_is_recorded(self):
        with pytest.warns(UserWarning, match="falling back to 'serial'"):
            q = TaskQueue(1, "process")
        assert q.engine == "serial" and q.requested_engine == "process"
        _, stats = q.run(make_tasks(1, 1), lambda t, w: {"ok": 1})
        assert stats.engine == "serial"
        assert stats.requested_engine == "process"

    def test_explicit_serial_does_not_warn(self):
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            TaskQueue(1, "serial")


class TestQueueStress:
    """Worker-coordination races the condvar dispatcher must not have.

    Before the rework, (a) workers exited as soon as the pending deque
    drained, even while a task executing elsewhere could fail and need
    them, and (b) the "allow anyway" fallback let a task retry on the
    very worker it failed on while other workers were still live."""

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_transient_faults_complete_exactly_once(self, workers):
        from repro.analysis import LockOrderWitness

        witness = LockOrderWitness()
        tasks = make_tasks(n_data=6, per_data=4)
        attempt_log: list[tuple[str, int]] = []
        log_lock = threading.Lock()

        def traced(task, worker):
            with log_lock:
                attempt_log.append((task.key(), worker))
            return {"ok": 1}

        fn = FaultInjector(traced, fail_first_attempt_every=3)
        results, stats = TaskQueue(
            workers, "thread", max_retries=3, lock_witness=witness
        ).run(tasks, fn)
        assert stats.failed == 0
        assert stats.completed == len(tasks)
        keys = [r.task.key() for r in results]
        assert sorted(keys) == sorted(t.key() for t in tasks)  # exactly once
        assert len(set(keys)) == len(tasks)
        assert stats.retries == fn.injected > 0
        witness.assert_acyclic()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_queue_checkpoint_lock_order_is_acyclic(self, workers, tmp_path):
        """Witness the real dispatcher↔store interaction: the result
        sink runs under the queue's condvar and takes the checkpoint
        lock, so the only edge must be queue → checkpoint, never back."""
        from repro.analysis import LockOrderWitness
        from repro.bench import CheckpointStore

        witness = LockOrderWitness()
        store = CheckpointStore(
            str(tmp_path / "ck.db"), flush_every=4, lock_witness=witness
        )
        try:
            tasks = make_tasks(n_data=4, per_data=3)
            fn = FaultInjector(lambda t, w: {"ok": 1}, fail_first_attempt_every=4)

            def sink(result):
                if result.ok:
                    store.put(result.task.key(), result.payload)

            results, stats = TaskQueue(
                workers, "thread", max_retries=3, lock_witness=witness
            ).run(tasks, fn, on_result=sink)
            store.flush()
            assert stats.failed == 0
            assert len(store.query()) == len(tasks)
            witness.assert_acyclic()
            assert ("taskqueue.cond", "checkpoint.lock") in witness.edges()
            assert ("checkpoint.lock", "taskqueue.cond") not in witness.edges()
        finally:
            store.close()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_exclusion_honored_while_alternatives_exist(self, workers):
        """A retry never lands on the worker it failed on when another
        live worker exists — guaranteed, not just likely, because no
        worker exits while a retry is queued or a task is in flight."""
        tasks = make_tasks(n_data=5, per_data=4)
        per_key_workers: dict[str, list[int]] = {}
        log_lock = threading.Lock()
        inject = FaultInjector(lambda t, w: {"ok": 1}, fail_first_attempt_every=4)

        def traced(task, worker):
            with log_lock:
                per_key_workers.setdefault(task.key(), []).append(worker)
            return inject(task, worker)

        results, stats = TaskQueue(workers, "thread", max_retries=2).run(tasks, traced)
        assert stats.failed == 0 and stats.retries > 0
        assert stats.exclusion_overrides == 0
        for key, attempt_workers in per_key_workers.items():
            if len(attempt_workers) > 1:
                assert attempt_workers[1] != attempt_workers[0], (
                    f"retry of {key[:8]} reran on failed worker {attempt_workers[0]}"
                )

    def test_worker_waits_for_inflight_retry(self):
        """The drained worker must wait for the in-flight task: if it
        exited (the old race), the failure could only retry on the
        worker it failed on."""
        tasks = make_tasks(n_data=5, per_data=1)
        slow_key = tasks[0].key()
        others_done = threading.Event()
        done_count = [0]
        lock = threading.Lock()
        attempt_workers: dict[str, list[int]] = {}

        def fn(task, worker):
            with lock:
                attempt_workers.setdefault(task.key(), []).append(worker)
            if task.key() == slow_key and len(attempt_workers[slow_key]) == 1:
                # Fail only after every other task has completed, so the
                # retry can only be served by a worker that waited.
                assert others_done.wait(timeout=30)
                raise TaskFailedError("late transient fault", task_key=task.key())
            with lock:
                done_count[0] += 1
                if done_count[0] == len(tasks) - 1:
                    others_done.set()
            return {"ok": 1}

        results, stats = TaskQueue(2, "thread", max_retries=2).run(tasks, fn)
        assert stats.failed == 0 and stats.completed == len(tasks)
        assert len(attempt_workers[slow_key]) == 2
        first, second = attempt_workers[slow_key]
        assert second != first

    def test_exclusion_lifted_only_when_no_alternative(self):
        """A task that failed on every worker may retry anywhere (the
        only sanctioned override), instead of deadlocking."""
        tasks = make_tasks(n_data=2, per_data=1)
        bad_key = tasks[0].key()
        fails = [0]

        def fn(task, worker):
            if task.key() == bad_key and fails[0] < 2:
                fails[0] += 1
                raise TaskFailedError("fails everywhere once", task_key=task.key())
            return {"ok": 1}

        results, stats = TaskQueue(2, "thread", max_retries=3).run(tasks, fn)
        assert stats.failed == 0 and stats.completed == 2
        assert stats.retries == 2

    def test_process_engine_completes_all(self):
        tasks = make_tasks(n_data=4, per_data=3)
        results, stats = TaskQueue(2, "process").run(tasks, _echo_worker)
        assert stats.failed == 0 and stats.completed == len(tasks)
        assert {r.task.key() for r in results} == {t.key() for t in tasks}
        assert all(r.payload["w"] == r.worker for r in results)

    def test_process_engine_retries_transient_failures(self):
        tasks = make_tasks(n_data=3, per_data=2)
        results, stats = TaskQueue(2, "process", max_retries=2).run(
            tasks, _flaky_worker
        )
        assert stats.failed == 0 and stats.completed == len(tasks)
        assert stats.retries >= 1

    def test_process_engine_worker_init(self):
        tasks = make_tasks(n_data=3, per_data=2)
        results, stats = TaskQueue(2, "process").run(
            tasks, None, worker_init=_make_echo_worker
        )
        assert stats.failed == 0 and stats.completed == len(tasks)

    def test_timing_buckets_accumulate(self):
        tasks = make_tasks(n_data=2, per_data=2)
        _, stats = TaskQueue(2, "thread").run(
            tasks, lambda t, w: {"ok": 1}, on_result=lambda r: None
        )
        summary = stats.stage_summary()
        assert set(summary) == {"queue_wait", "execute", "checkpoint"}
        assert summary["execute"] > 0
        assert all(v >= 0 for v in summary.values())

    def test_run_requires_a_task_function(self):
        with pytest.raises(ValueError):
            TaskQueue(1, "serial").run([], None)


def _echo_worker(task, worker):
    """Module-level so the process engine can pickle it."""
    return {"w": worker, "d": task.data_id}


_FLAKY_FAILED = set()


def _make_echo_worker():
    return _echo_worker


def _flaky_worker(task, worker):
    """Fails each data/0 task's first attempt in a given process."""
    if task.data_id == "data/0" and task.key() not in _FLAKY_FAILED:
        _FLAKY_FAILED.add(task.key())
        raise TaskFailedError("transient process fault", task_key=task.key())
    return {"w": worker}


class TestFaultInjector:
    def test_fails_only_first_attempt(self):
        tasks = make_tasks(n_data=1, per_data=1)
        fn = FaultInjector(lambda t, w: {"ok": 1}, fail_first_attempt_every=1)
        with pytest.raises(TaskFailedError):
            fn(tasks[0], 0)
        assert fn(tasks[0], 0) == {"ok": 1}


_CRASH_DIR_ENV = "REPRO_TEST_CRASH_DIR"


def _crash_once_worker(task, worker):
    """Kills its worker process on the first data/0 task ever seen.

    The once-only latch is a marker file so it survives the worker's
    death (the rebuilt pool must not crash again on the same task).
    """
    if task.data_id == "data/0":
        marker = os.path.join(os.environ[_CRASH_DIR_ENV], "crashed")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os._exit(3)
    return {"w": worker}


def _always_crash_worker(task, worker):
    os._exit(5)


def _hang_once_worker(task, worker):
    """First attempt of the flagged task hangs well past any deadline."""
    marker = os.path.join(os.environ[_CRASH_DIR_ENV], "hung")
    if task.data_id == "data/0":
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            time.sleep(60)
    return {"w": worker}


class TestSupervision:
    """Hang detection, crash recovery, and permanent-failure quarantine."""

    def test_permanent_status_quarantined_with_attempts_one(self):
        from repro.core import UnsupportedError

        tasks = make_tasks(n_data=2, per_data=1)
        bad = tasks[0].key()

        def fn(task, worker):
            if task.key() == bad:
                raise UnsupportedError("cannot model this compressor")
            return {"ok": 1}

        results, stats = TaskQueue(1, "serial", max_retries=5).run(tasks, fn)
        assert stats.quarantined == 1 and stats.retries == 0
        failed = [r for r in results if not r.ok][0]
        assert failed.attempts == 1
        assert failed.status == int(Status.UNSUPPORTED)

    def test_thread_watchdog_abandons_hung_task(self):
        tasks = make_tasks(n_data=3, per_data=1)
        hung_key = tasks[0].key()
        hangs = [0]
        lock = threading.Lock()

        def fn(task, worker):
            if task.key() == hung_key:
                with lock:
                    hangs[0] += 1
                    first = hangs[0] == 1
                if first:
                    time.sleep(30)  # well past the deadline
            return {"ok": 1}

        t0 = time.monotonic()
        results, stats = TaskQueue(
            2, "thread", max_retries=2, task_timeout=0.2
        ).run(tasks, fn)
        elapsed = time.monotonic() - t0
        assert elapsed < 10  # did not wait out the 30s sleep
        assert stats.failed == 0 and stats.completed == len(tasks)
        assert stats.timeouts == 1 and stats.retries >= 1
        assert {r.task.key() for r in results} == {t.key() for t in tasks}

    def test_thread_watchdog_fails_task_hanging_every_attempt(self):
        tasks = make_tasks(n_data=2, per_data=1)
        hung_key = tasks[0].key()

        def fn(task, worker):
            if task.key() == hung_key:
                time.sleep(30)
            return {"ok": 1}

        results, stats = TaskQueue(
            2, "thread", max_retries=1, task_timeout=0.2
        ).run(tasks, fn)
        assert stats.completed == 1 and stats.failed == 1
        failed = [r for r in results if not r.ok][0]
        assert failed.status == int(Status.TIMEOUT)
        assert "deadline" in failed.error
        assert failed.attempts == 2  # original + one retried hang

    def test_process_pool_crash_recovers_without_losing_tasks(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_CRASH_DIR_ENV, str(tmp_path))
        tasks = make_tasks(n_data=3, per_data=2)
        results, stats = TaskQueue(2, "process").run(tasks, _crash_once_worker)
        assert stats.failed == 0 and stats.completed == len(tasks)
        assert {r.task.key() for r in results} == {t.key() for t in tasks}
        assert stats.pool_rebuilds >= 1
        # Pool-level faults are not charged to tasks: nothing needed more
        # than one *task* attempt, because the crash broke the pool, not
        # the task.
        assert all(r.attempts == 1 for r in results)
        # ... and they never pollute the per-worker balance stats.
        assert all(w >= 0 for w in stats.per_worker)

    def test_crash_looping_worker_fails_run_with_diagnosis(self):
        tasks = make_tasks(n_data=2, per_data=1)
        results, stats = TaskQueue(2, "process", max_pool_rebuilds=1).run(
            tasks, _always_crash_worker
        )
        assert stats.completed == 0 and stats.failed == len(tasks)
        assert stats.pool_rebuilds == 2  # the cap (1) + the final strike
        assert all("crash-looping" in r.error for r in results)
        assert all(w >= 0 for w in stats.per_worker)

    def test_process_deadline_recycles_pool_on_hang(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_CRASH_DIR_ENV, str(tmp_path))
        tasks = make_tasks(n_data=2, per_data=1)
        t0 = time.monotonic()
        results, stats = TaskQueue(
            2, "process", max_retries=2, task_timeout=0.5
        ).run(tasks, _hang_once_worker)
        elapsed = time.monotonic() - t0
        assert elapsed < 30  # did not wait out the 60s hang
        assert stats.failed == 0 and stats.completed == len(tasks)
        assert stats.timeouts >= 1
        assert stats.pool_rebuilds >= 1


class TestPoisonKeysThreadEngine:
    """Satellite: FaultInjector.poison_keys under the thread engine."""

    def test_poison_exhausts_retries_and_overrides_exclusion(self):
        tasks = make_tasks(n_data=3, per_data=2)
        poison = {tasks[0].key()}
        fn = FaultInjector(lambda t, w: {"ok": 1}, poison_keys=poison)
        results, stats = TaskQueue(3, "thread", max_retries=3).run(tasks, fn)
        # The queue drains: every healthy task completes, the poison task
        # fails after exhausting all attempts, and nothing blocks.
        assert stats.completed == len(tasks) - 1
        assert stats.failed == 1
        assert {r.task.key() for r in results} == {t.key() for t in tasks}
        failed = [r for r in results if not r.ok][0]
        assert failed.task.key() in poison
        assert failed.attempts == 4  # original + max_retries
        # Three failures land on three distinct workers (exclusion), so
        # the fourth attempt can only run via the sanctioned override.
        assert stats.exclusion_overrides == 1

    def test_many_poison_tasks_never_block_drain(self):
        tasks = make_tasks(n_data=4, per_data=2)
        poison = {t.key() for t in tasks[::2]}
        fn = FaultInjector(lambda t, w: {"ok": 1}, poison_keys=poison)
        results, stats = TaskQueue(2, "thread", max_retries=2).run(tasks, fn)
        assert stats.failed == len(poison)
        assert stats.completed == len(tasks) - len(poison)
        assert len(results) == len(tasks)
        assert all(r.attempts == 3 for r in results if not r.ok)


class TestCallbackIsolation:
    def test_failing_on_result_marks_task_failed(self):
        """A broken result sink (e.g. checkpoint write error) must not
        kill the worker; the task is recorded failed for a later rerun."""
        tasks = make_tasks(n_data=1, per_data=3)
        calls = []

        def flaky_sink(result):
            calls.append(result.task.key())
            if len(calls) == 2:
                raise IOError("disk full")

        results, stats = TaskQueue(1, "serial").run(
            tasks, lambda t, w: {"ok": 1}, on_result=flaky_sink
        )
        assert stats.completed == 2
        assert stats.failed == 1
        failed = [r for r in results if not r.ok]
        assert "disk full" in failed[0].error

    def test_threaded_store_writes(self, tmp_path):
        """Checkpoint writes from multiple worker threads are safe."""
        from repro.bench import CheckpointStore

        store = CheckpointStore(str(tmp_path / "mt.db"))
        tasks = make_tasks(n_data=4, per_data=3)

        def sink(result):
            store.put(result.task.key(), result.payload)

        _, stats = TaskQueue(4, "thread").run(
            tasks, lambda t, w: {"w": w}, on_result=sink
        )
        assert stats.failed == 0
        assert store.count() == len(tasks)
