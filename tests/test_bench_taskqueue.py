"""Tests for the task queue: locality scheduling, retries, fault injection."""

from collections import deque

import pytest

from repro.bench import FaultInjector, LocalityScheduler, Task, TaskQueue
from repro.core import TaskFailedError


def make_tasks(n_data=4, per_data=3):
    tasks = []
    for d in range(n_data):
        for k in range(per_data):
            tasks.append(
                Task(
                    data_index=d,
                    data_id=f"data/{d}",
                    compressor_id="sz3",
                    compressor_options={"pressio:abs": 10.0 ** -(k + 2)},
                    dataset_config={"entry:data_id": f"data/{d}"},
                    replicate=0,
                    nbytes=1 << 20,
                )
            )
    return tasks


class TestLocalityScheduler:
    def test_prefers_cached_data(self):
        sched = LocalityScheduler()
        tasks = make_tasks(n_data=2, per_data=2)
        pending = deque(tasks)
        first = sched.pick(0, pending)  # miss, caches data/0
        second = sched.pick(0, pending)  # should hit data/0 again
        assert first.data_id == second.data_id == "data/0"
        assert sched.stats_hits == 1 and sched.stats_misses == 1

    def test_empty_pending(self):
        assert LocalityScheduler().pick(0, deque()) is None


class TestTaskQueue:
    def test_serial_runs_everything(self):
        tasks = make_tasks()
        results, stats = TaskQueue(1, "serial").run(tasks, lambda t, w: {"ok": 1})
        assert stats.completed == len(tasks)
        assert stats.failed == 0
        assert all(r.ok for r in results)

    def test_locality_rate_high_with_grouped_tasks(self):
        tasks = make_tasks(n_data=4, per_data=5)
        _, stats = TaskQueue(1, "serial").run(tasks, lambda t, w: {})
        # 4 misses (first touch per datum), 16 hits.
        assert stats.locality_hits == 16
        assert stats.locality_rate == pytest.approx(16 / 20)

    def test_thread_engine_completes_all(self):
        tasks = make_tasks(n_data=3, per_data=4)
        results, stats = TaskQueue(3, "thread").run(tasks, lambda t, w: {"w": w})
        assert stats.completed == 12
        assert {r.task.key() for r in results} == {t.key() for t in tasks}

    def test_transient_failure_retried(self):
        tasks = make_tasks(n_data=1, per_data=3)
        fn = FaultInjector(lambda t, w: {"ok": 1}, fail_first_attempt_every=2)
        results, stats = TaskQueue(1, "serial", max_retries=2).run(tasks, fn)
        assert stats.completed == 3
        assert stats.retries == fn.injected > 0

    def test_poisoned_task_reported_not_raised(self):
        tasks = make_tasks(n_data=1, per_data=2)
        poison = {tasks[0].key()}
        fn = FaultInjector(lambda t, w: {"ok": 1}, poison_keys=poison)
        results, stats = TaskQueue(1, "serial", max_retries=1).run(tasks, fn)
        assert stats.completed == 1 and stats.failed == 1
        failed = [r for r in results if not r.ok][0]
        assert "poisoned" in failed.error
        assert failed.attempts == 2  # original + one retry

    def test_on_result_callback_sees_successes(self):
        seen = []
        tasks = make_tasks(n_data=1, per_data=2)
        TaskQueue(1, "serial").run(tasks, lambda t, w: {"x": 1}, on_result=seen.append)
        assert len(seen) == 2 and all(r.ok for r in seen)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            TaskQueue(2, "mpi")

    def test_single_worker_forces_serial(self):
        q = TaskQueue(1, "thread")
        assert q.engine == "serial"


class TestFaultInjector:
    def test_fails_only_first_attempt(self):
        tasks = make_tasks(n_data=1, per_data=1)
        fn = FaultInjector(lambda t, w: {"ok": 1}, fail_first_attempt_every=1)
        with pytest.raises(TaskFailedError):
            fn(tasks[0], 0)
        assert fn(tasks[0], 0) == {"ok": 1}


class TestCallbackIsolation:
    def test_failing_on_result_marks_task_failed(self):
        """A broken result sink (e.g. checkpoint write error) must not
        kill the worker; the task is recorded failed for a later rerun."""
        tasks = make_tasks(n_data=1, per_data=3)
        calls = []

        def flaky_sink(result):
            calls.append(result.task.key())
            if len(calls) == 2:
                raise IOError("disk full")

        results, stats = TaskQueue(1, "serial").run(
            tasks, lambda t, w: {"ok": 1}, on_result=flaky_sink
        )
        assert stats.completed == 2
        assert stats.failed == 1
        failed = [r for r in results if not r.ok]
        assert "disk full" in failed[0].error

    def test_threaded_store_writes(self, tmp_path):
        """Checkpoint writes from multiple worker threads are safe."""
        from repro.bench import CheckpointStore

        store = CheckpointStore(str(tmp_path / "mt.db"))
        tasks = make_tasks(n_data=4, per_data=3)

        def sink(result):
            store.put(result.task.key(), result.payload)

        _, stats = TaskQueue(4, "thread").run(
            tasks, lambda t, w: {"w": w}, on_result=sink
        )
        assert stats.failed == 0
        assert store.count() == len(tasks)
