"""Tests for the discrete-event simulated cluster."""

import pytest

from repro.bench import ChaosPlan, SimulatedCluster, Task, scaling_sweep


def make_tasks(n_data=8, per_data=4, nbytes=1 << 24):
    tasks = []
    for d in range(n_data):
        for k in range(per_data):
            tasks.append(
                Task(
                    data_index=d,
                    data_id=f"data/{d}",
                    compressor_id="sz3",
                    compressor_options={"pressio:abs": 10.0 ** -(k + 2)},
                    dataset_config={"entry:data_id": f"data/{d}"},
                    replicate=0,
                    nbytes=nbytes,
                )
            )
    return tasks


CONST_COST = 0.05


class TestSimulatedCluster:
    def test_deterministic(self):
        tasks = make_tasks()
        a = SimulatedCluster(4).run(tasks, lambda t: CONST_COST)
        b = SimulatedCluster(4).run(make_tasks(), lambda t: CONST_COST)
        assert a.makespan == b.makespan
        assert a.cache_hits == b.cache_hits

    def test_more_nodes_faster(self):
        tasks = make_tasks(n_data=8, per_data=4)
        reports = scaling_sweep(tasks, lambda t: CONST_COST, [1, 2, 4, 8])
        makespans = [reports[n].makespan for n in (1, 2, 4, 8)]
        assert makespans == sorted(makespans, reverse=True)
        assert makespans[0] > makespans[-1] * 2  # real speedup

    def test_locality_reduces_load_time(self):
        tasks = make_tasks(n_data=4, per_data=8)
        aware = SimulatedCluster(4, locality_aware=True).run(tasks, lambda t: CONST_COST)
        naive = SimulatedCluster(4, locality_aware=False).run(
            make_tasks(n_data=4, per_data=8), lambda t: CONST_COST
        )
        assert aware.cache_hits >= naive.cache_hits
        assert aware.total_load_seconds <= naive.total_load_seconds

    def test_cache_capacity_forces_misses(self):
        tasks = make_tasks(n_data=6, per_data=2)
        tiny = SimulatedCluster(1, cache_capacity_entries=1).run(tasks, lambda t: CONST_COST)
        big = SimulatedCluster(1, cache_capacity_entries=64).run(
            make_tasks(n_data=6, per_data=2), lambda t: CONST_COST
        )
        assert tiny.cache_hits <= big.cache_hits

    def test_accounting_consistent(self):
        tasks = make_tasks(n_data=3, per_data=3)
        report = SimulatedCluster(2).run(tasks, lambda t: CONST_COST)
        assert report.cache_hits + report.cache_misses == len(tasks)
        assert report.total_compute_seconds == pytest.approx(CONST_COST * len(tasks))
        assert 0 < report.utilisation <= 1.0
        assert 0 <= report.load_fraction < 1.0
        # Makespan cannot beat perfect parallelism.
        busy = report.total_load_seconds + report.total_compute_seconds
        assert report.makespan >= busy / 2 - 1e-9

    def test_checkpoint_cost_batched_by_flush_interval(self):
        tasks = make_tasks(n_data=4, per_data=4)  # 16 tasks
        per_task = SimulatedCluster(2, checkpoint_seconds=0.01, flush_every=1).run(
            tasks, lambda t: CONST_COST
        )
        batched = SimulatedCluster(2, checkpoint_seconds=0.01, flush_every=8).run(
            make_tasks(n_data=4, per_data=4), lambda t: CONST_COST
        )
        assert per_task.checkpoint_commits == 16
        assert batched.checkpoint_commits == 2
        assert batched.total_checkpoint_seconds < per_task.total_checkpoint_seconds
        assert batched.makespan < per_task.makespan

    def test_checkpoint_tail_flush_counted(self):
        tasks = make_tasks(n_data=1, per_data=5)  # 5 tasks, interval 4
        report = SimulatedCluster(1, checkpoint_seconds=0.01, flush_every=4).run(
            tasks, lambda t: CONST_COST
        )
        assert report.checkpoint_commits == 2  # one full batch + the tail
        assert report.total_checkpoint_seconds == pytest.approx(0.02)

    def test_no_checkpoint_cost_by_default(self):
        report = SimulatedCluster(2).run(make_tasks(2, 2), lambda t: CONST_COST)
        assert report.checkpoint_commits == 0
        assert report.total_checkpoint_seconds == 0.0

    def test_load_cost_model(self):
        cluster = SimulatedCluster(1, load_bandwidth=1e9, load_latency=0.01)
        task = make_tasks(1, 1, nbytes=10**9)[0]
        assert cluster.load_cost(task, cached=False) == pytest.approx(1.01)
        assert cluster.load_cost(task, cached=True) == cluster.cache_hit_seconds


def chaos(spec, seed=0, hang_seconds=0.5, tmpdir=None):
    return ChaosPlan.from_spec(spec, seed=seed, hang_seconds=hang_seconds,
                               state_dir=tmpdir)


class TestSimulatedChaos:
    def test_no_chaos_report_has_zero_fault_fields(self):
        report = SimulatedCluster(2).run(make_tasks(2, 2), lambda t: CONST_COST)
        assert report.injected_faults == {"crash": 0, "hang": 0, "exception": 0}
        assert report.retries == 0
        assert report.wasted_seconds == 0.0
        assert report.recovery_seconds_total == 0.0

    def test_chaos_run_is_deterministic(self, tmp_path):
        plan_a = chaos("crash:0.2,hang:0.1", tmpdir=str(tmp_path / "a"))
        plan_b = chaos("crash:0.2,hang:0.1", tmpdir=str(tmp_path / "b"))
        a = SimulatedCluster(4).run(make_tasks(), lambda t: CONST_COST, chaos=plan_a)
        b = SimulatedCluster(4).run(make_tasks(), lambda t: CONST_COST, chaos=plan_b)
        assert a.makespan == b.makespan
        assert a.injected_faults == b.injected_faults
        assert a.wasted_seconds == b.wasted_seconds

    def test_every_task_still_completes(self, tmp_path):
        tasks = make_tasks(n_data=6, per_data=3)
        plan = chaos("crash:0.3,hang:0.2,exception:0.2", tmpdir=str(tmp_path))
        report = SimulatedCluster(3).run(tasks, lambda t: CONST_COST, chaos=plan)
        # every injected fault requeues; completions show up as cache
        # traffic — one hit/miss per *attempt* that reached the cache.
        assert report.total_compute_seconds == pytest.approx(CONST_COST * len(tasks))
        assert sum(report.injected_faults.values()) > 0
        assert report.retries == sum(report.injected_faults.values())

    def test_chaos_costs_time_and_work(self, tmp_path):
        tasks = make_tasks(n_data=6, per_data=3)
        clean = SimulatedCluster(3).run(list(tasks), lambda t: CONST_COST)
        plan = chaos("crash:0.3", tmpdir=str(tmp_path))
        faulty = SimulatedCluster(3).run(list(tasks), lambda t: CONST_COST, chaos=plan)
        assert faulty.injected_faults["crash"] > 0
        assert faulty.makespan > clean.makespan
        assert faulty.wasted_seconds > 0
        assert faulty.recovery_seconds_total == pytest.approx(
            faulty.injected_faults["crash"] * 1.0
        )

    def test_crash_restarts_node_cold(self, tmp_path):
        # Same data reused heavily: without chaos almost every re-touch
        # hits the node cache; crashes clear caches so hits drop.
        tasks = make_tasks(n_data=2, per_data=12)
        clean = SimulatedCluster(2).run(list(tasks), lambda t: CONST_COST)
        plan = chaos("crash:0.4", tmpdir=str(tmp_path))
        faulty = SimulatedCluster(2).run(list(tasks), lambda t: CONST_COST, chaos=plan)
        assert faulty.injected_faults["crash"] > 0
        assert faulty.cache_misses > clean.cache_misses

    def test_hang_charges_stall_not_recovery(self, tmp_path):
        plan = chaos("hang", hang_seconds=0.7, tmpdir=str(tmp_path))  # rate 1.0
        tasks = make_tasks(n_data=2, per_data=1)
        report = SimulatedCluster(1).run(tasks, lambda t: CONST_COST, chaos=plan)
        # every task hangs exactly once (once-per-key semantics), then
        # completes on retry.
        assert report.injected_faults["hang"] == len(tasks)
        assert report.recovery_seconds_total == 0.0
        assert report.wasted_seconds > 0.7 * len(tasks)

    def test_injection_is_scheduling_independent(self, tmp_path):
        # The same plan faults the same task keys at every node count —
        # selection is a pure (seed, class, key) draw, so a scaling sweep
        # isolates placement against a fixed fault load.
        tasks = make_tasks(n_data=6, per_data=3)
        plan = chaos("crash:0.25,exception:0.2", tmpdir=str(tmp_path))
        reports = scaling_sweep(
            tasks, lambda t: CONST_COST, [1, 2, 4, 8], chaos=plan
        )
        counts = {n: r.injected_faults for n, r in reports.items()}
        assert sum(counts[1].values()) > 0
        assert all(c == counts[1] for c in counts.values())

    def test_recovery_seconds_knob(self, tmp_path):
        tasks = make_tasks(n_data=6, per_data=3)
        plan = chaos("crash:0.3", tmpdir=str(tmp_path))
        fast = SimulatedCluster(2).run(
            list(tasks), lambda t: CONST_COST, chaos=plan, recovery_seconds=0.1
        )
        slow = SimulatedCluster(2).run(
            list(tasks), lambda t: CONST_COST, chaos=plan, recovery_seconds=5.0
        )
        assert fast.injected_faults == slow.injected_faults
        assert slow.makespan > fast.makespan
        assert slow.recovery_seconds_total > fast.recovery_seconds_total
