"""Tests for PressioOptions: typing, namespaces, stable items."""

import numpy as np
import pytest

from repro.core import OptionError, PressioOptions, TypeMismatchError
from repro.core.options import as_options, is_stable_value


class TestBasicMapping:
    def test_set_get(self):
        opts = PressioOptions({"pressio:abs": 1e-4})
        assert opts["pressio:abs"] == 1e-4

    def test_len_iter_contains(self):
        opts = PressioOptions({"a:x": 1, "b:y": 2})
        assert len(opts) == 2
        assert set(opts) == {"a:x", "b:y"}
        assert "a:x" in opts and "c:z" not in opts

    def test_get_default(self):
        opts = PressioOptions()
        assert opts.get("missing", 42) == 42

    def test_delete(self):
        opts = PressioOptions({"a:x": 1})
        del opts["a:x"]
        assert "a:x" not in opts

    def test_non_string_key_rejected(self):
        opts = PressioOptions()
        with pytest.raises(OptionError):
            opts[42] = 1  # type: ignore[index]

    def test_equality_with_dict(self):
        assert PressioOptions({"a:x": 1}) == {"a:x": 1}
        assert PressioOptions({"a:x": 1}) == PressioOptions({"a:x": 1})
        assert PressioOptions({"a:x": 1}) != PressioOptions({"a:x": 2})

    def test_copy_is_independent(self):
        opts = PressioOptions({"a:x": 1})
        dup = opts.copy()
        dup["a:x"] = 2
        assert opts["a:x"] == 1


class TestTypes:
    def test_declared_type_enforced(self):
        opts = PressioOptions()
        opts.set_type("pressio:abs", float)
        with pytest.raises(TypeMismatchError):
            opts["pressio:abs"] = "not-a-float"
        opts["pressio:abs"] = 0.5
        assert opts["pressio:abs"] == 0.5

    def test_set_type_initialises_none(self):
        opts = PressioOptions()
        opts.set_type("x:y", int)
        assert opts["x:y"] is None
        assert opts.declared_type("x:y") is int

    def test_cast_set(self):
        opts = PressioOptions()
        opts.set_type("a:n", int)
        opts.set_type("a:f", float)
        opts.set_type("a:b", bool)
        opts.cast_set("a:n", "17")
        opts.cast_set("a:f", "2.5")
        opts.cast_set("a:b", "true")
        assert opts["a:n"] == 17
        assert opts["a:f"] == 2.5
        assert opts["a:b"] is True


class TestNamespacesAndMerge:
    def test_namespace_selection(self):
        opts = PressioOptions({"sz3:a": 1, "zfp:b": 2, "sz3:c": 3})
        sub = opts.namespace("sz3")
        assert sub.to_dict() == {"sz3:a": 1, "sz3:c": 3}

    def test_merge_overwrites(self):
        opts = PressioOptions({"a:x": 1})
        opts.merge({"a:x": 2, "a:y": 3})
        assert opts["a:x"] == 2 and opts["a:y"] == 3

    def test_updated_kwargs_translate_dunder(self):
        opts = PressioOptions({"pressio:abs": 1e-4})
        out = opts.updated(pressio__abs=1e-6)
        assert out["pressio:abs"] == 1e-6
        assert opts["pressio:abs"] == 1e-4  # original untouched


class TestStability:
    def test_stable_scalars(self):
        for value in (1, 1.5, "s", b"b", True, None, np.float64(2.0)):
            assert is_stable_value(value)

    def test_unstable_values(self):
        assert not is_stable_value(lambda: None)
        assert not is_stable_value(open)
        assert not is_stable_value(np.random.default_rng(0))

    def test_nested_containers(self):
        assert is_stable_value([1, 2, {"k": "v"}])
        assert not is_stable_value([1, lambda: None])

    def test_stable_items_excludes_opaque(self):
        opts = PressioOptions({"a:x": 1, "a:cb": (lambda: None)})
        keys = [k for k, _ in opts.stable_items()]
        assert keys == ["a:x"]

    def test_stable_items_sorted(self):
        opts = PressioOptions({"b:y": 2, "a:x": 1})
        assert [k for k, _ in opts.stable_items()] == ["a:x", "b:y"]


def test_as_options_coercion():
    assert as_options(None).to_dict() == {}
    assert as_options({"a:x": 1})["a:x"] == 1
    opts = PressioOptions({"a:x": 1})
    assert as_options(opts) is opts
