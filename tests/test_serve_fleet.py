"""Fleet serving: multi-process workers, shared cache, supervision.

The serving tier's scale-out contract: N workers behind one address (or
a round-robined address list where ``SO_REUSEPORT`` is unavailable),
one shared featurization store, fleet-wide refresh that provably
reaches every worker, and a supervisor that restarts crashed workers
while queries keep succeeding.
"""

from __future__ import annotations

import os
import signal
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.bench.runner import ExperimentRunner
from repro.dataset import HurricaneDataset
from repro.predict.scheme import get_scheme
from repro.serve import (
    FleetClient,
    ModelRegistry,
    PredictionClient,
    ServeFleet,
    registry_key,
    reuse_port_supported,
    scheme_params,
)

BOUND = 1e-3
SHAPE = (16, 16, 8)


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """A tiny published campaign; the runner stays open to republish."""
    dataset = HurricaneDataset(
        shape=SHAPE, timesteps=[0], fields=["P", "U", "QRAIN", "CLOUD"]
    )
    scheme = get_scheme("rahman2023", n_estimators=5, max_depth=4, augment_factor=1.0)
    runner = ExperimentRunner(
        dataset, compressors=["sz3"], bounds=[BOUND], schemes=[scheme], n_folds=2
    )
    observations = runner.collect().observations
    registry_root = str(tmp_path_factory.mktemp("registry"))
    registry = ModelRegistry(registry_root)
    receipts = runner.publish(registry, observations)
    key = registry_key(
        scheme.id,
        "sz3",
        {"pressio:abs": BOUND, "pressio:abs_is_relative": True},
        scheme_params(scheme),
    )
    rows = [
        dict(o)
        for o in observations
        if o.get("scheme:rahman2023:supported") and o.get("size:compression_ratio")
    ]
    yield SimpleNamespace(
        registry_root=registry_root,
        registry=registry,
        runner=runner,
        observations=observations,
        receipts=receipts,
        key=key,
        rows=rows,
    )
    runner.close()


def fleet(campaign, workers=2, **kwargs):
    kwargs.setdefault("ready_timeout", 60.0)
    return ServeFleet(campaign.registry_root, workers, **kwargs)


def wait_for(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestFleetLifecycle:
    def test_start_ping_stats_stop(self, campaign):
        with fleet(campaign) as f:
            assert f.live_workers() == 2
            assert f.ping()
            stats = f.stats()
            assert stats["aggregate"]["workers"] == 2
            assert set(stats["workers"]) == {0, 1}
            assert len(f.control_addresses()) == 2

    @pytest.mark.skipif(
        not reuse_port_supported(), reason="SO_REUSEPORT unavailable on this host"
    )
    def test_reuse_port_single_shared_address(self, campaign):
        with fleet(campaign) as f:
            assert f.reuse_port
            assert f.data_addresses() == [f.address]
            with f.connect() as client:
                response = client.predict(campaign.key, results=campaign.rows[0])
            assert response["prediction"] > 0

    def test_forced_fallback_round_robins(self, campaign):
        with fleet(campaign, reuse_port=False) as f:
            assert not f.reuse_port
            addresses = f.data_addresses()
            assert len(addresses) == 2
            with f.connect() as client:
                for i in range(6):
                    client.predict(
                        campaign.key, results=campaign.rows[i % len(campaign.rows)]
                    )
            per_worker = f.stats()["workers"]
            # Round-robin spreads the 6 requests over both workers.
            assert all(s["requests"] >= 2 for s in per_worker.values())


class TestSharedFeatureCache:
    def test_cross_worker_featurize_hit(self, campaign):
        """A field featurized by worker 0 is an L2 hit for worker 1 —
        bit-identical prediction, evaluator skipped."""
        rng = np.random.default_rng(5)
        arr = rng.standard_normal(SHAPE).astype(np.float32)
        with fleet(campaign, reuse_port=False, feat_cache="shared") as f:
            (a0, a1) = f.data_addresses()
            with PredictionClient(*a0) as c0:
                first = c0.predict(campaign.key, data=arr)
            with PredictionClient(*a1) as c1:
                second = c1.predict(campaign.key, data=arr)
            aggregate = f.stats()["aggregate"]
        assert second["prediction"] == first["prediction"]
        assert aggregate["feat_misses"] == 1
        assert aggregate["feat_hits"] == 1
        assert aggregate["feat_bytes_saved"] == arr.nbytes

    def test_what_if_sweep_hits_within_worker(self, campaign):
        """Repeats of the same field hit the cache (the what-if shape:
        rahman2023's features are bound-insensitive)."""
        rng = np.random.default_rng(6)
        arr = rng.standard_normal(SHAPE).astype(np.float32)
        with fleet(campaign, workers=1, feat_cache="local") as f:
            with f.connect() as client:
                for _ in range(4):
                    client.predict(campaign.key, data=arr)
            aggregate = f.stats()["aggregate"]
        assert aggregate["feat_misses"] == 1
        assert aggregate["feat_hits"] == 3
        assert aggregate["feat_seconds_saved"] > 0

    def test_cache_off_mode(self, campaign):
        rng = np.random.default_rng(7)
        arr = rng.standard_normal(SHAPE).astype(np.float32)
        with fleet(campaign, workers=1, feat_cache="off") as f:
            with f.connect() as client:
                client.predict(campaign.key, data=arr)
                client.predict(campaign.key, data=arr)
            stats = f.stats()
            aggregate = stats["aggregate"]
            assert aggregate["feat_hits"] == 0
            assert aggregate["feat_misses"] == 0
            assert all("featcache" not in s for s in stats["workers"].values())


class TestZeroCopyResend:
    def test_repeat_probe_rides_data_ref(self, campaign):
        """Once the server confirms a field is cached, the client's next
        probe of it sends a fingerprint instead of the payload."""
        rng = np.random.default_rng(8)
        arr = rng.standard_normal(SHAPE).astype(np.float32)
        with fleet(campaign, workers=1, feat_cache="shared") as f:
            client = PredictionClient(*f.address)
            try:
                first = client.predict(campaign.key, data=arr)
                assert first["cached"]
                second = client.predict(campaign.key, data=arr)
                third = client.predict(campaign.key, data=arr)
                aggregate = f.stats()["aggregate"]
            finally:
                client.close()
        assert client.ref_hits == 2
        assert second["prediction"] == first["prediction"]
        assert third["prediction"] == first["prediction"]
        assert aggregate["feat_ref_hits"] == 2
        assert aggregate["feat_ref_misses"] == 0

    def test_preencoded_payload_matches_ndarray(self, campaign):
        """data= accepts the encoded wire mapping; same prediction."""
        from repro.serve import encode_array

        rng = np.random.default_rng(9)
        arr = rng.standard_normal(SHAPE).astype(np.float32)
        with fleet(campaign, workers=1, feat_cache="shared") as f:
            with f.connect() as client:
                by_array = client.predict(campaign.key, data=arr)
                by_payload = client.predict(campaign.key, data=encode_array(arr))
        assert by_payload["prediction"] == by_array["prediction"]

    def test_need_data_falls_back_to_full_resend(self, campaign):
        """A ref the server cannot honour (evicted entry, fresh worker)
        is renegotiated transparently: the caller just sees the answer."""
        rng = np.random.default_rng(10)
        arr = rng.standard_normal(SHAPE).astype(np.float32)
        from repro.serve import encode_array

        payload = encode_array(arr)
        with fleet(campaign, workers=1, feat_cache="shared") as f:
            client = PredictionClient(*f.address)
            try:
                # Simulate a stale ref memory (e.g. the entry was evicted
                # between probes): the client believes the field is cached.
                client._known_refs[client._fingerprint(payload)] = None
                response = client.predict(campaign.key, data=payload)
                aggregate = f.stats()["aggregate"]
            finally:
                client.close()
        assert response["status"] == "ok"
        assert client.ref_hits == 0
        assert aggregate["feat_ref_misses"] == 1
        assert aggregate["feat_misses"] == 1
        # The renegotiated full send is the one real request served.
        assert aggregate["failed"] == 0

    def test_cache_off_server_answers_need_data(self, campaign):
        rng = np.random.default_rng(12)
        arr = rng.standard_normal(SHAPE).astype(np.float32)
        from repro.serve import encode_array

        payload = encode_array(arr)
        with fleet(campaign, workers=1, feat_cache="off") as f:
            client = PredictionClient(*f.address)
            try:
                # A cache-off server never reports "cached", so a well
                # behaved client never sends refs — prime one anyway.
                client._known_refs[client._fingerprint(payload)] = None
                response = client.predict(campaign.key, data=payload)
                again = client.predict(campaign.key, data=payload)
                aggregate = f.stats()["aggregate"]
            finally:
                client.close()
        assert response["status"] == "ok"
        assert again["prediction"] == response["prediction"]
        assert client.ref_hits == 0
        assert aggregate["feat_ref_misses"] == 1
        # The fallback full send got no "cached" confirmation, so the
        # second predict went straight to a full payload: no more refs.
        assert aggregate["feat_ref_hits"] == 0


class TestSupervision:
    def test_killed_worker_restarts_and_queries_keep_succeeding(self, campaign):
        with fleet(campaign, reuse_port=False) as f:
            victim = f.worker_pids()[0]
            with f.connect() as client:
                os.kill(victim, signal.SIGKILL)
                # Every query during the kill/restart window must succeed:
                # the fleet client rotates past the dead worker.
                for i in range(20):
                    response = client.predict(
                        campaign.key, results=campaign.rows[i % len(campaign.rows)]
                    )
                    assert "prediction" in response
                assert wait_for(lambda: f.live_workers() == 2)
                assert f.restart_counts()[0] >= 1
                assert f.worker_pids()[0] != victim
                # And the restarted worker serves again.
                assert f.ping()

    def test_crash_loop_cap_parks_worker(self, campaign):
        with fleet(campaign, reuse_port=False, max_restarts=1) as f:
            # Kill worker 0 every time it comes back until the cap trips.
            assert wait_for(
                lambda: self._kill_once(f, 0) and f.crash_looped_workers() == [0],
                timeout=30.0,
            )
            assert f.crash_looped_workers() == [0]
            # The fleet keeps serving on the survivor, and fleet-wide ops
            # exclude the parked slot instead of hanging on it.
            assert f.live_workers() == 1
            assert f.ping()
            with f.connect() as client:
                assert client.predict(campaign.key, results=campaign.rows[0])

    @staticmethod
    def _kill_once(f, worker_id):
        pid = f.worker_pids().get(worker_id)
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        return True


class TestRefresh:
    def test_refresh_fans_out_to_every_worker(self, campaign):
        with fleet(campaign) as f:
            before = {
                wid: resp[campaign.key] for wid, resp in f.refresh().items()
            }
            assert len(before) == 2
            # Publish a new generation, then flip the whole fleet.
            campaign.runner.publish(campaign.registry, campaign.observations)
            latest = campaign.registry.latest(campaign.key)
            assert latest not in before.values()
            after = f.refresh()
            assert {resp[campaign.key] for resp in after.values()} == {latest}
            # Predictions now come from the new generation on any worker.
            with f.connect() as client:
                response = client.predict(campaign.key, results=campaign.rows[0])
            assert response["version"] == latest


class TestClientConnectionReuse:
    def test_one_dial_for_many_queries(self, campaign):
        with fleet(campaign, workers=1) as f:
            client = PredictionClient(*f.address)
            try:
                for i in range(8):
                    client.predict(
                        campaign.key, results=campaign.rows[i % len(campaign.rows)]
                    )
                assert client.connect_count == 1
                stats = f.stats()["aggregate"]
            finally:
                client.close()
        # 8 predicts + the stats fan-out connection(s), but the predict
        # path itself rode exactly one TCP connection.
        assert stats["requests"] >= 8
        assert stats["connections"] <= 3

    def test_reconnect_across_worker_restart(self, campaign):
        """A client holding a dead connection transparently redials —
        under SO_REUSEPORT the kernel routes the new connection to a
        live worker, so the query succeeds mid-restart."""
        if not reuse_port_supported():
            pytest.skip("SO_REUSEPORT unavailable on this host")
        with fleet(campaign, workers=2) as f:
            client = PredictionClient(*f.address, reconnects=4)
            try:
                first = client.predict(campaign.key, results=campaign.rows[0])
                os.kill(sorted(f.worker_pids().values())[0], signal.SIGKILL)
                # Whether or not the killed worker held our connection,
                # every subsequent query must still answer.
                for _ in range(10):
                    response = client.predict(
                        campaign.key, results=campaign.rows[0]
                    )
                    assert response["prediction"] == first["prediction"]
                assert client.connect_count >= 1
            finally:
                client.close()
