"""Tests for the zero-copy data plane: shared-memory lifecycle, the
worker-pinned affinity map, and dtype/order fidelity through the
cache/handoff paths."""

import os

import numpy as np
import pytest

from repro.bench import ChaosPlan, CheckpointStore, ExperimentRunner, Task, TaskQueue
from repro.core.data import PressioData
from repro.dataset import HurricaneDataset, LocalCache
from repro.dataset.base import DatasetPlugin
from repro.dataset.shm import (
    DATA_PLANES,
    PLANE_COUNTERS,
    PlaneCounters,
    SharedSegmentRegistry,
)


def make_tasks(n_data=4, per_data=3):
    tasks = []
    for d in range(n_data):
        for k in range(per_data):
            tasks.append(
                Task(
                    data_index=d,
                    data_id=f"data/{d}",
                    compressor_id="sz3",
                    compressor_options={"pressio:abs": 10.0 ** -(k + 2)},
                    dataset_config={"entry:data_id": f"data/{d}"},
                    replicate=0,
                    nbytes=1 << 20,
                )
            )
    return tasks


def _namespace_prefix(reg: SharedSegmentRegistry) -> str:
    """'psio<namespace>' — every segment of this campaign starts with it."""
    return reg.segment_name("probe").rsplit("-", 1)[0]


def _dev_shm_names(prefix: str) -> list[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-tmpfs platforms
        return []
    return sorted(n for n in os.listdir("/dev/shm") if n.startswith(prefix))


class TestSharedSegmentRegistry:
    def test_publish_then_get_roundtrip(self, tmp_path):
        reg = SharedSegmentRegistry(str(tmp_path))
        src = np.arange(48, dtype=np.float32).reshape(6, 8)
        view, info = reg.publish("hurricane/P/0", src)
        assert info.name and info.nbytes == src.nbytes
        np.testing.assert_array_equal(view, src)
        assert not view.flags.writeable
        again = reg.get("hurricane/P/0")
        assert again is not None
        np.testing.assert_array_equal(again[0], src)
        assert reg.get("never/published") is None
        reg.unlink_all()

    def test_cross_registry_attach_is_zero_copy(self, tmp_path):
        """A sibling registry (another worker) attaches by name and the
        bytes are counted as mapped, not copied."""
        owner = SharedSegmentRegistry(str(tmp_path))
        src = np.linspace(0, 1, 1024, dtype=np.float32)
        owner.publish("k", src)
        before = PLANE_COUNTERS.snapshot()
        sibling = SharedSegmentRegistry(str(tmp_path))
        got = sibling.get("k")
        delta = PlaneCounters.delta(before, PLANE_COUNTERS.snapshot())
        assert got is not None
        np.testing.assert_array_equal(got[0], src)
        assert delta["bytes_mapped"] == src.nbytes
        assert delta["bytes_copied"] == 0
        assert delta["segments_attached"] == 1
        sibling.close()
        owner.unlink_all()

    def test_refcounted_release(self, tmp_path):
        reg = SharedSegmentRegistry(str(tmp_path))
        reg.publish("k", np.zeros(8, dtype=np.float32))
        reg.get("k")  # refcount 2
        name = reg.segment_name("k")
        reg.release("k")
        assert name in reg.attached_names()  # still one reference
        reg.release("k")
        assert name not in reg.attached_names()
        reg.unlink_all()

    def test_unlink_all_sweeps_segments_and_ledger(self, tmp_path):
        reg = SharedSegmentRegistry(str(tmp_path))
        reg.publish("a", np.ones(16, dtype=np.float32))
        reg.publish("b", np.ones(16, dtype=np.float64))
        prefix = _namespace_prefix(reg)
        assert len(_dev_shm_names(prefix)) == 2 or len(list(reg.iter_live_segments())) == 2
        removed = reg.unlink_all()
        assert len(removed) == 2
        assert reg.ledger_names() == []
        assert list(reg.iter_live_segments()) == []
        assert _dev_shm_names(prefix) == []
        assert reg.unlink_all() == []  # idempotent

    def test_unlink_all_honours_crashed_publisher_intent(self, tmp_path):
        """A worker killed between segment creation and ledger publish
        leaves an intent record + an orphan segment; the sweep reclaims
        both (the leak-proof-under-chaos guarantee)."""
        from multiprocessing import shared_memory

        reg = SharedSegmentRegistry(str(tmp_path))
        name = reg.segment_name("died/mid/publish")
        with open(os.path.join(str(tmp_path), f"{name}.intent"), "w") as fh:
            fh.write("{}")
        seg = shared_memory.SharedMemory(name=name, create=True, size=64)
        seg.close()
        assert name in reg.ledger_names()
        assert list(reg.iter_live_segments()) == [name]
        removed = reg.unlink_all()
        assert removed == [name]
        assert list(reg.iter_live_segments()) == []
        assert _dev_shm_names(_namespace_prefix(reg)) == []

    def test_publish_race_with_dead_publisher_falls_back(self, tmp_path):
        """An intent held by a publisher that never finishes must not
        wedge the loser: after attach_timeout it serves a private copy."""
        reg = SharedSegmentRegistry(str(tmp_path), attach_timeout=0.2)
        name = reg.segment_name("contested")
        with open(os.path.join(str(tmp_path), f"{name}.intent"), "w") as fh:
            fh.write("{}")
        src = np.arange(10, dtype=np.float32)
        view, info = reg.publish("contested", src)
        assert info.name == ""  # private fallback, not a shared segment
        np.testing.assert_array_equal(view, src)
        reg.unlink_all()


class TestDtypeOrderPreservation:
    """Satellite: no silent float64 upcast or C/F re-layout through the
    handoff paths."""

    def test_shm_preserves_float32_fortran_order(self, tmp_path):
        reg = SharedSegmentRegistry(str(tmp_path))
        src = np.asfortranarray(
            np.arange(24, dtype=np.float32).reshape(2, 3, 4) / 7.0
        )
        view, info = reg.publish("f-ordered", src)
        assert info.dtype == src.dtype.str and info.order == "F"
        assert view.dtype == np.float32
        assert view.flags["F_CONTIGUOUS"] and not view.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(view, src)
        # A second consumer (fresh registry = another process's view of
        # the ledger) must reconstruct the exact same strides.
        sibling = SharedSegmentRegistry(str(tmp_path))
        arr, _ = sibling.get("f-ordered")
        assert arr.dtype == np.float32
        assert arr.flags["F_CONTIGUOUS"] and not arr.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(arr, src)
        sibling.close()
        reg.unlink_all()

    def test_shm_preserves_int16(self, tmp_path):
        reg = SharedSegmentRegistry(str(tmp_path))
        src = np.arange(32, dtype=np.int16)
        view, _ = reg.publish("ints", src)
        assert view.dtype == np.int16
        np.testing.assert_array_equal(view, src)
        reg.unlink_all()

    def test_local_cache_mmap_preserves_dtype_and_order(self, tmp_path):
        class FortranDataset(DatasetPlugin):
            id = "fortran"

            def __len__(self):
                return 1

            def load_metadata(self, index):
                return {"data_id": "fortran/0", "shape": (6, 5), "dtype": "float32"}

            def load_data(self, index):
                arr = np.asfortranarray(
                    np.arange(30, dtype=np.float32).reshape(6, 5)
                )
                return PressioData(arr, metadata=self.load_metadata(index))

        cache = LocalCache(FortranDataset(), cache_dir=str(tmp_path), mmap=True)
        first = cache.load_data(0).array  # miss: spilled, served via mmap
        second = cache.load_data(0).array  # hit: mapped from the spill
        for arr in (first, second):
            assert isinstance(arr, np.memmap)
            assert not arr.flags.writeable
            assert arr.dtype == np.float32  # no float64 upcast
            assert arr.flags["F_CONTIGUOUS"]  # no re-layout copy
        np.testing.assert_array_equal(second, np.arange(30).reshape(6, 5))
        assert cache.hits == 1 and cache.misses == 1

    def test_local_cache_mmap_hit_counts_mapped_bytes(self, tmp_path):
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P"])
        cache = LocalCache(ds, cache_dir=str(tmp_path), mmap=True)
        cache.load_data(0)
        before = PLANE_COUNTERS.snapshot()
        data = cache.load_data(0)
        delta = PlaneCounters.delta(before, PLANE_COUNTERS.snapshot())
        assert delta["bytes_mapped"] >= data.nbytes
        assert delta["bytes_copied"] == 0


def _echo_worker(task, worker):
    """Module-level so the process engine can pickle it."""
    return {"w": worker, "d": task.data_id}


_DP_DIR_ENV = "REPRO_TEST_DP_LEDGER"


def _publish_then_crash_worker(task, worker):
    """Publishes the datum to the campaign ledger, then kills its worker
    process exactly once (marker-file latch survives the death)."""
    reg = SharedSegmentRegistry(os.environ[_DP_DIR_ENV], track=False)
    arr = np.full((256,), float(task.data_index), dtype=np.float32)
    reg.publish(task.data_id, arr)
    marker = os.path.join(os.environ[_DP_DIR_ENV], "crashed-once")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        pass
    else:
        os.close(fd)
        os._exit(3)
    return {"w": worker}


class TestAffinityDispatch:
    """Worker-pinned dispatch: datum → worker affinity on the process
    engine, with steal-on-idle and per-task hit accounting."""

    def test_affinity_hit_rate_with_groups_twice_workers(self):
        # 4 datum groups on 2 workers (>= 2x), 6 tasks per datum: each
        # group costs exactly one cold load, everything else is pinned.
        tasks = make_tasks(n_data=4, per_data=6)
        results, stats = TaskQueue(2, "process").run(tasks, _echo_worker)
        assert stats.completed == len(tasks)
        assert stats.affinity_hits + stats.affinity_misses == len(tasks)
        assert stats.affinity_hit_rate >= 0.8
        # Whole-group chunks: every task of a datum ran on one worker.
        by_datum = {}
        for r in results:
            by_datum.setdefault(r.task.data_id, set()).add(r.worker)
        assert all(len(ws) == 1 for ws in by_datum.values())

    def test_chunked_dispatch_completes_and_accounts_every_task(self):
        tasks = make_tasks(n_data=3, per_data=4)
        results, stats = TaskQueue(2, "process", chunk_size=2).run(
            tasks, _echo_worker
        )
        assert stats.completed == len(tasks)
        assert {r.task.key() for r in results} == {t.key() for t in tasks}
        assert stats.affinity_hits + stats.affinity_misses == len(tasks)
        assert stats.affinity_hits > 0
        # The affinity counters mirror into the locality stats so both
        # engines report locality through one vocabulary.
        assert stats.locality_hits == stats.affinity_hits

    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            TaskQueue(2, "process", chunk_size=0)

    def test_run_records_data_plane_label(self):
        tasks = make_tasks(n_data=1, per_data=2)
        _, stats = TaskQueue(1, "serial", data_plane="mmap").run(
            tasks, lambda t, w: {"ok": 1}
        )
        assert stats.data_plane == "mmap"
        summary = stats.data_plane_summary()
        assert summary["data_plane"] == "mmap"
        assert set(summary) >= {"bytes_copied", "bytes_mapped", "affinity_hit_rate"}


class TestShmLifecycle:
    """Satellite: segments are unlinked after normal collect(), after a
    chaos worker crash, and after a BrokenProcessPool rebuild — no
    leaked /dev/shm names."""

    @staticmethod
    def _runner(tmp_path, queue, store=None):
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P", "U"])
        return ExperimentRunner(
            ds,
            compressors=("szx",),
            bounds=(1e-4, 1e-3),
            schemes=("tao2019",),
            store=store or CheckpointStore(":memory:"),
            queue=queue,
            data_plane="shm",
            data_plane_dir=str(tmp_path / "plane"),
        )

    def test_normal_collect_leaves_no_segments(self, tmp_path):
        runner = self._runner(tmp_path, TaskQueue(2, "process"))
        obs, stats, failures = runner.collect()
        assert failures == [] and stats.failed == 0
        assert len(obs) == 4
        assert stats.data_plane == "shm"
        reg = SharedSegmentRegistry(str(tmp_path / "plane" / "shm"))
        assert list(reg.iter_live_segments()) == []
        assert _dev_shm_names(_namespace_prefix(reg)) == []
        runner.close()

    def test_chaos_crash_collect_leaves_no_segments(self, tmp_path):
        plan = ChaosPlan.from_spec(
            "crash:1.0", seed=7, state_dir=str(tmp_path / "chaos")
        )
        runner = self._runner(
            tmp_path, TaskQueue(2, "process", max_pool_rebuilds=10)
        )
        obs, stats, failures = runner.collect(chaos=plan)
        # Every task's worker was killed once; the supervisor rebuilt the
        # slot, requeued the chunk, and the campaign still drained.
        assert failures == [] and stats.failed == 0
        assert len(obs) == 4
        assert stats.pool_rebuilds >= 1  # BrokenProcessPool recovery ran
        assert plan.injected_counts()["crash"] >= 1
        reg = SharedSegmentRegistry(str(tmp_path / "plane" / "shm"))
        assert list(reg.iter_live_segments()) == []
        assert _dev_shm_names(_namespace_prefix(reg)) == []
        runner.close()

    def test_owner_sweep_reclaims_after_pool_rebuild(self, tmp_path, monkeypatch):
        """Queue-level: a worker publishes, then dies; its segments
        survive the crash (workers are untracked) until the owner's
        sweep unlinks them."""
        ledger = tmp_path / "ledger"
        ledger.mkdir()
        monkeypatch.setenv(_DP_DIR_ENV, str(ledger))
        tasks = make_tasks(n_data=2, per_data=2)
        results, stats = TaskQueue(2, "process").run(
            tasks, _publish_then_crash_worker
        )
        assert stats.failed == 0 and stats.completed == len(tasks)
        assert stats.pool_rebuilds >= 1
        owner = SharedSegmentRegistry(str(ledger))
        live = list(owner.iter_live_segments())
        assert len(live) == 2  # the crash did not take the segments down
        removed = owner.unlink_all()
        assert sorted(removed) == sorted(live)
        assert list(owner.iter_live_segments()) == []
        assert _dev_shm_names(_namespace_prefix(owner)) == []

    def test_shm_plane_counts_mapped_bytes(self, tmp_path):
        runner = self._runner(tmp_path, TaskQueue(2, "process"))
        _, stats, _ = runner.collect()
        # Two tasks per datum: the second load of each datum attaches to
        # the published segment instead of copying.
        assert stats.bytes_mapped > 0
        assert stats.bytes_copied > 0  # leaf loads + one-time publishes
        runner.close()


class TestPlaneConfiguration:
    def test_unknown_plane_rejected(self):
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P"])
        with pytest.raises(ValueError, match="unknown data plane"):
            ExperimentRunner(ds, compressors=("szx",), data_plane="rdma")

    def test_plane_choice_preserves_checkpoint_keys(self, tmp_path):
        """Switching --data-plane must not invalidate a checkpoint: task
        keys hash the bare dataset, not the plane stack."""
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P"])
        keys = []
        for plane in DATA_PLANES:
            runner = ExperimentRunner(
                ds,
                compressors=("szx",),
                bounds=(1e-4,),
                schemes=(),
                data_plane=plane,
                data_plane_dir=str(tmp_path / plane),
            )
            keys.append([t.key() for t in runner.build_tasks()])
            runner.close()
        assert keys[0] == keys[1] == keys[2]

    def test_mmap_plane_serves_results_identical_to_pickle(self, tmp_path):
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P"])
        payloads = {}
        for plane in ("pickle", "mmap"):
            runner = ExperimentRunner(
                ds,
                compressors=("szx",),
                bounds=(1e-4,),
                schemes=("tao2019",),
                data_plane=plane,
                data_plane_dir=str(tmp_path / plane),
            )
            obs, stats, _ = runner.collect()
            assert stats.failed == 0
            payloads[plane] = obs[0]["size:compression_ratio"]
            runner.close()
        assert payloads["pickle"] == pytest.approx(payloads["mmap"])
