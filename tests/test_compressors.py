"""Tests for the error-bounded compressors: bounds, round trips, stages."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.compressors import make_compressor
from repro.compressors.sz3 import (
    ESCAPE_LIMIT,
    dequantize,
    lorenzo_forward,
    lorenzo_inverse,
    quantize,
    split_escapes,
)
from repro.compressors.szx import classify_blocks
from repro.compressors.zfp import (
    block_transform_forward,
    block_transform_inverse,
    inverse_gain,
    join_blocks,
    pack_width_groups,
    split_blocks,
    unpack_width_groups,
    unzigzag,
    zigzag,
)
from repro.core import OptionError

ALL = ("sz3", "zfp", "szx")


def max_err(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.abs(a.astype(np.float64) - b.astype(np.float64)).max())


def bound_tol(eb: float, data: np.ndarray) -> float:
    """Allowed error: eb plus a few float32 ULPs of the data magnitude."""
    scale = float(np.abs(data).max()) if data.size else 1.0
    return eb * (1 + 1e-7) + 4 * np.finfo(np.float32).eps * scale


class TestErrorBounds:
    @pytest.mark.parametrize("name", ALL)
    @pytest.mark.parametrize("eb", [1e-2, 1e-4])
    def test_bound_on_fixtures(self, name, eb, smooth_field, sparse_field, rough_field):
        for data in (smooth_field, sparse_field, rough_field):
            comp = make_compressor(name, pressio__abs=eb)
            recon = comp.decompress(comp.compress(data)).array
            assert max_err(data, recon) <= bound_tol(eb, data)

    @pytest.mark.parametrize("name", ALL)
    @given(
        data=arrays(
            np.float32,
            array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=12),
            elements=st.floats(-1e4, 1e4, width=32),
        ),
        eb=st.sampled_from([1e-3, 1e-1]),
    )
    @settings(max_examples=25, deadline=None)
    def test_bound_property(self, name, data, eb):
        comp = make_compressor(name, pressio__abs=eb)
        recon = comp.decompress(comp.compress(data)).array
        assert recon.shape == data.shape
        if data.size:
            assert max_err(data, recon) <= bound_tol(eb, data)

    @pytest.mark.parametrize("name", ALL)
    def test_float64_payloads(self, name):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((16, 16)).astype(np.float64)
        comp = make_compressor(name, pressio__abs=1e-6)
        recon = comp.decompress(comp.compress(data)).array
        assert recon.dtype == np.float64
        assert max_err(data, recon) <= 1e-6 * 1.001

    @pytest.mark.parametrize("name", ALL)
    def test_invalid_bound_rejected(self, name, smooth_field):
        comp = make_compressor(name, pressio__abs=-1.0)
        with pytest.raises(OptionError):
            comp.compress(smooth_field)


class TestEdgeShapes:
    @pytest.mark.parametrize("name", ALL)
    @pytest.mark.parametrize("shape", [(1,), (3,), (4, 4), (5, 7), (2, 3, 5), (257,)])
    def test_odd_shapes(self, name, shape):
        rng = np.random.default_rng(1)
        data = rng.standard_normal(shape).astype(np.float32)
        comp = make_compressor(name, pressio__abs=1e-3)
        recon = comp.decompress(comp.compress(data))
        assert recon.shape == shape
        assert max_err(data, recon.array) <= bound_tol(1e-3, data)

    @pytest.mark.parametrize("name", ALL)
    def test_constant_field_compresses_extremely(self, name):
        data = np.full((32, 32), 3.25, dtype=np.float32)
        comp = make_compressor(name, pressio__abs=1e-4)
        stream = comp.compress(data)
        assert data.nbytes / stream.nbytes > 10
        assert max_err(data, comp.decompress(stream).array) <= 1e-4 * 1.001

    @pytest.mark.parametrize("name", ALL)
    def test_all_zero_field_stays_zero(self, name):
        data = np.zeros((16, 16, 8), dtype=np.float32)
        comp = make_compressor(name, pressio__abs=1e-5)
        recon = comp.decompress(comp.compress(data)).array
        assert np.abs(recon).max() <= 1e-5


class TestCompressionBehaviour:
    def test_smooth_beats_rough(self, smooth_field, rough_field):
        for name in ALL:
            comp = make_compressor(name, pressio__abs=1e-3)
            cr_smooth = smooth_field.nbytes / comp.compress(smooth_field).nbytes
            cr_rough = rough_field.nbytes / comp.compress(rough_field).nbytes
            assert cr_smooth > cr_rough, name

    def test_looser_bound_higher_ratio(self, smooth_field):
        for name in ALL:
            tight = make_compressor(name, pressio__abs=1e-6)
            loose = make_compressor(name, pressio__abs=1e-2)
            cr_tight = smooth_field.nbytes / tight.compress(smooth_field).nbytes
            cr_loose = smooth_field.nbytes / loose.compress(smooth_field).nbytes
            assert cr_loose > cr_tight, name

    def test_szx_excels_on_sparse(self, sparse_field):
        comp = make_compressor("szx", pressio__abs=1e-4)
        cr = sparse_field.nbytes / comp.compress(sparse_field).nbytes
        assert cr > 4


class TestSZ3Internals:
    def test_quantize_bound(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal(1000)
        eb = 1e-3
        recon = dequantize(quantize(data, eb), eb, np.float64)
        assert np.abs(recon - data).max() <= eb

    @pytest.mark.parametrize("order", [0, 1, 2])
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_lorenzo_invertible(self, order, ndim):
        rng = np.random.default_rng(3)
        shape = (7, 5, 4)[:ndim]
        codes = rng.integers(-1000, 1000, size=shape)
        resid = lorenzo_forward(codes, order)
        assert np.array_equal(lorenzo_inverse(resid, order), codes)

    def test_lorenzo_shrinks_smooth_codes(self, smooth_field):
        codes = quantize(smooth_field.astype(np.float64), 1e-4)
        resid = lorenzo_forward(codes, 1)
        assert np.abs(resid).mean() < np.abs(codes).mean()

    def test_split_escapes(self):
        resid = np.array([0, 5, ESCAPE_LIMIT + 3, -ESCAPE_LIMIT - 9])
        symbols, escaped = split_escapes(resid)
        assert symbols.tolist() == [0, 5, ESCAPE_LIMIT, ESCAPE_LIMIT]
        assert escaped.tolist() == [ESCAPE_LIMIT + 3, -ESCAPE_LIMIT - 9]

    def test_split_escapes_no_copy_when_clean(self):
        resid = np.array([0, 1, -1])
        symbols, escaped = split_escapes(resid)
        assert escaped.size == 0

    def test_predictor_option(self, smooth_field):
        for predictor in ("none", "lorenzo", "lorenzo2"):
            comp = make_compressor("sz3", pressio__abs=1e-3)
            comp.set_options({"sz3:predictor": predictor})
            recon = comp.decompress(comp.compress(smooth_field)).array
            assert max_err(smooth_field, recon) <= bound_tol(1e-3, smooth_field)

    def test_unknown_predictor_raises(self, smooth_field):
        comp = make_compressor("sz3", pressio__abs=1e-3)
        comp.set_options({"sz3:predictor": "magic"})
        with pytest.raises(OptionError):
            comp.compress(smooth_field)

    def test_stage_sizes_sum(self, smooth_field):
        comp = make_compressor("sz3", pressio__abs=1e-3)
        sizes = comp.stage_sizes(smooth_field)
        assert sizes["total"] == sizes["huffman_stream"] + sizes["escape_stream"] + sizes["header"]

    def test_lz77_backend_roundtrip(self, smooth_field):
        comp = make_compressor("sz3", pressio__abs=1e-2)
        comp.set_options({"sz3:lossless": "lz77"})
        small = smooth_field[:8, :8, :4]
        recon = comp.decompress(comp.compress(small)).array
        assert max_err(small, recon) <= bound_tol(1e-2, small)


class TestZFPInternals:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_transform_near_invertible(self, ndim):
        """ZFP's lifting pair loses a few low bits per axis (the real
        codec reserves guard bits for exactly this); at FRAC_BITS=40 the
        loss is ~2^-37 relative — far below any usable tolerance."""
        rng = np.random.default_rng(4)
        blocks = rng.integers(-(2**40), 2**40, size=(10,) + (4,) * ndim)
        recon = block_transform_inverse(block_transform_forward(blocks))
        assert np.abs(recon - blocks).max() <= 2 ** (2 * ndim)

    def test_transform_concentrates_energy(self):
        # A linear ramp should transform to mostly-zero AC coefficients.
        ramp = np.arange(64, dtype=np.int64).reshape(1, 4, 4, 4) * 1000
        coeffs = block_transform_forward(ramp).reshape(-1)
        mags = np.abs(coeffs)
        top4 = np.sort(mags)[-4:].sum()
        assert top4 / mags.sum() > 0.8

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_inverse_gain_reasonable(self, ndim):
        g = inverse_gain(ndim)
        assert 1.0 <= g <= 100.0

    def test_split_join_blocks_roundtrip(self):
        rng = np.random.default_rng(5)
        arr = rng.standard_normal((8, 12, 4))
        blocks = split_blocks(arr)
        assert blocks.shape == (2 * 3 * 1, 4, 4, 4)
        assert np.array_equal(join_blocks(blocks, arr.shape), arr)

    def test_zigzag_roundtrip(self):
        vals = np.array([0, -1, 1, -2**40, 2**40], dtype=np.int64)
        assert np.array_equal(unzigzag(zigzag(vals)), vals)
        # zigzag maps small magnitudes to small unsigned values.
        assert zigzag(np.array([0]))[0] == 0
        assert zigzag(np.array([-1]))[0] == 1
        assert zigzag(np.array([1]))[0] == 2

    def test_width_groups_roundtrip(self):
        rng = np.random.default_rng(6)
        rows = rng.integers(0, 2**12, size=(20, 15)).astype(np.uint64)
        rows[3] = 0  # a zero row gets width 0
        payload, widths = pack_width_groups(rows)
        assert widths[3] == 0
        out = unpack_width_groups(payload, widths, 15)
        assert np.array_equal(out, rows)


class TestSZXInternals:
    def test_classify_blocks(self):
        flat = np.concatenate([np.full(128, 1.0), np.linspace(0, 1, 128)])
        _, lo, const = classify_blocks(flat, 128, eb=1e-3)
        assert const.tolist() == [True, False]
        assert lo[0] == pytest.approx(1.0)

    def test_padding_never_creates_nonconstant(self):
        flat = np.full(100, 2.0)
        padded, _, const = classify_blocks(flat, 128, eb=1e-6)
        assert padded.size == 128
        assert const.tolist() == [True]

    def test_constant_block_uses_midrange(self):
        # Values spanning exactly 2*eb must still satisfy the bound.
        eb = 0.5
        flat = np.tile(np.array([0.0, 1.0]), 64)  # span 1.0 == 2*eb
        comp = make_compressor("szx", pressio__abs=eb)
        recon = comp.decompress(comp.compress(flat.astype(np.float32))).array
        assert np.abs(recon - flat).max() <= eb * 1.0001

    def test_block_size_option(self, smooth_field):
        comp = make_compressor("szx", pressio__abs=1e-3)
        comp.set_options({"szx:block_size": 32})
        recon = comp.decompress(comp.compress(smooth_field)).array
        assert max_err(smooth_field, recon) <= bound_tol(1e-3, smooth_field)

    def test_constant_block_fraction(self, sparse_field):
        comp = make_compressor("szx", pressio__abs=1e-2)
        frac = comp.constant_block_fraction(sparse_field)
        assert 0.0 <= frac <= 1.0
