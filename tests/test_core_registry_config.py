"""Tests for the plugin registry and configuration introspection."""

import pytest

from repro.core import OptionError, Registry, coerce_scalar, parse_flags
from repro.core.config import options_from_mapping, parse_assignment, split_component_options
from repro.core.options import PressioOptions


class TestRegistry:
    def test_register_and_create(self):
        reg: Registry[object] = Registry("demo")

        @reg.register("thing")
        class Thing:
            def __init__(self, value=0):
                self.value = value

        obj = reg.create("thing", value=3)
        assert obj.value == 3

    def test_unknown_name_lists_known(self):
        reg: Registry[object] = Registry("demo")
        reg.add("a", lambda: 1)
        with pytest.raises(OptionError, match="known: a"):
            reg.create("b")

    def test_names_sorted_and_len(self):
        reg: Registry[object] = Registry("demo")
        reg.add("z", lambda: 1)
        reg.add("a", lambda: 2)
        assert reg.names() == ["a", "z"]
        assert len(reg) == 2
        assert "z" in reg

    def test_reregistration_replaces(self):
        reg: Registry[object] = Registry("demo")
        reg.add("x", lambda: 1)
        reg.add("x", lambda: 2)
        assert reg.create("x") == 2


class TestCoercion:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("1", 1),
            ("-3", -3),
            ("1.5", 1.5),
            ("1e-4", 1e-4),
            ("true", True),
            ("off", False),
            ("hello", "hello"),
            ("'42'", "42"),
            ('"on"', "on"),
        ],
    )
    def test_coerce_scalar(self, raw, expected):
        assert coerce_scalar(raw) == expected
        assert type(coerce_scalar(raw)) is type(expected)


class TestFlagParsing:
    def test_parse_flags(self):
        opts = parse_flags(["-o", "pressio:abs=1e-4", "-o", "sz3:predictor=lorenzo"])
        assert opts["pressio:abs"] == 1e-4
        assert opts["sz3:predictor"] == "lorenzo"

    def test_bare_assignments_accepted(self):
        opts = parse_flags(["pressio:abs=0.5"])
        assert opts["pressio:abs"] == 0.5

    def test_missing_argument_raises(self):
        with pytest.raises(OptionError):
            parse_flags(["-o"])

    def test_unknown_token_raises(self):
        with pytest.raises(OptionError):
            parse_flags(["--weird"])

    def test_parse_assignment_empty_key(self):
        with pytest.raises(OptionError):
            parse_assignment("=3")

    def test_options_from_mapping_coerces_strings(self):
        opts = options_from_mapping({"a:x": "2", "a:y": 3.5})
        assert opts["a:x"] == 2 and opts["a:y"] == 3.5


class TestComponentSplit:
    def test_split_by_prefix(self):
        opts = PressioOptions(
            {"pressio:abs": 1e-4, "sz3:p": "l", "hurricane:seed": 1, "oops:x": 9}
        )
        parts = split_component_options(opts, ["sz3", "hurricane"])
        assert parts["sz3"].to_dict() == {"pressio:abs": 1e-4, "sz3:p": "l"}
        assert parts["hurricane"].to_dict() == {"pressio:abs": 1e-4, "hurricane:seed": 1}
        assert parts["extra"].to_dict() == {"oops:x": 9}
