"""Tests for the PressioData buffer abstraction."""

import numpy as np
import pytest

from repro.core import PressioData, TypeMismatchError, as_data


class TestConstruction:
    def test_wraps_without_copy(self):
        arr = np.arange(10, dtype=np.float32)
        buf = PressioData(arr)
        arr[0] = 99
        assert buf.array[0] == 99

    def test_copy_flag(self):
        arr = np.arange(10, dtype=np.float32)
        buf = PressioData(arr, copy=True)
        arr[0] = 99
        assert buf.array[0] == 0

    def test_empty_constructor(self):
        buf = PressioData.empty((4, 5), dtype=np.float64)
        assert buf.shape == (4, 5) and buf.dtype == np.float64

    def test_from_bytes(self):
        buf = PressioData.from_bytes(b"\x01\x02\x03")
        assert buf.dtype == np.uint8 and buf.size == 3


class TestProperties:
    def test_shape_size_nbytes(self):
        buf = PressioData(np.zeros((3, 4), dtype=np.float32))
        assert buf.shape == (3, 4)
        assert buf.ndim == 2
        assert buf.size == 12
        assert buf.nbytes == 48

    def test_tobytes_roundtrip(self):
        arr = np.arange(6, dtype=np.int32)
        assert np.frombuffer(PressioData(arr).tobytes(), dtype=np.int32).tolist() == list(range(6))


class TestMetadataAndIdentity:
    def test_data_id_from_provenance(self):
        buf = PressioData(np.zeros(3), metadata={"file": "f.npy", "field": "P", "timestep": 2})
        assert buf.data_id() == "f.npy/P/2"

    def test_data_id_explicit(self):
        buf = PressioData(np.zeros(3), metadata={"data_id": "custom"})
        assert buf.data_id() == "custom"

    def test_data_id_anonymous_is_stable(self):
        buf = PressioData(np.zeros(3))
        assert buf.data_id() == buf.data_id()

    def test_with_metadata_merges(self):
        buf = PressioData(np.zeros(3), metadata={"a": 1})
        out = buf.with_metadata(b=2)
        assert out.metadata == {"a": 1, "b": 2}
        assert buf.metadata == {"a": 1}


class TestDomains:
    def test_to_domain_tags(self):
        buf = PressioData(np.zeros(3))
        dev = buf.to_domain("device")
        assert dev.domain == "device" and buf.domain == "host"

    def test_same_domain_returns_self(self):
        buf = PressioData(np.zeros(3))
        assert buf.to_domain("host") is buf


class TestValidation:
    def test_require_floating_rejects_ints(self):
        with pytest.raises(TypeMismatchError):
            PressioData(np.arange(4)).require_floating()

    def test_require_floating_accepts_floats(self):
        arr = PressioData(np.zeros(4, dtype=np.float32)).require_floating()
        assert arr.dtype == np.float32

    def test_astype_preserves_metadata(self):
        buf = PressioData(np.zeros(3, np.float32), metadata={"field": "P"})
        out = buf.astype(np.float64)
        assert out.dtype == np.float64 and out.metadata["field"] == "P"


def test_as_data_passthrough_and_wrap():
    buf = PressioData(np.zeros(2))
    assert as_data(buf) is buf
    assert isinstance(as_data(np.zeros(2)), PressioData)
