"""Tests for the experiment runner: collection, checkpoints, Table 2."""

import math

import numpy as np
import pytest

from repro.bench import (
    CheckpointStore,
    ExperimentRunner,
    FaultInjector,
    StageStat,
    TaskQueue,
    format_table2,
    rows_to_records,
)
from repro.dataset import HurricaneDataset


@pytest.fixture(scope="module")
def runner_and_obs():
    ds = HurricaneDataset(shape=(12, 12, 8), timesteps=[0, 24])  # all 13 fields
    runner = ExperimentRunner(
        ds,
        compressors=("sz3", "zfp"),
        bounds=(1e-4,),
        schemes=("khan2023", "jin2022", "rahman2023"),
        n_folds=5,
    )
    obs, stats, _ = runner.collect()
    return runner, obs, stats


class TestStageStat:
    def test_from_samples(self):
        stat = StageStat.from_samples([0.001, 0.002, 0.003])
        assert stat.mean == pytest.approx(0.002)
        assert stat.n == 3
        assert "±" in stat.ms()

    def test_empty_not_available(self):
        stat = StageStat.from_samples([])
        assert not stat.available and stat.ms() == "N/A"

    def test_nan_samples_dropped(self):
        stat = StageStat.from_samples([0.001, float("nan")])
        assert stat.n == 1


class TestCollection:
    def test_all_tasks_collected(self, runner_and_obs):
        runner, obs, stats = runner_and_obs
        assert stats.failed == 0
        assert len(obs) == 13 * 2 * 2  # fields*steps x compressors x 1 bound

    def test_observation_contents(self, runner_and_obs):
        _, obs, _ = runner_and_obs
        sample = obs[0]
        assert sample["size:compression_ratio"] > 0
        assert "time:compress" in sample
        assert "error_stat:max_error" in sample
        assert sample["error_stat:max_error"] <= sample["effective_bound"] * 1.01

    def test_jin_marked_unsupported_on_zfp(self, runner_and_obs):
        _, obs, _ = runner_and_obs
        zfp_obs = [o for o in obs if o["compressor"] == "zfp"]
        assert all(o["scheme:jin2022:supported"] is False for o in zfp_obs)
        assert all(o["scheme:khan2023:supported"] is True for o in zfp_obs)

    def test_relative_bounds_scale_with_range(self, runner_and_obs):
        _, obs, _ = runner_and_obs
        by_field = {}
        for o in obs:
            if o["compressor"] == "sz3":
                by_field[o["field"]] = o["effective_bound"]
        # P spans hundreds; QRAIN spans ~1e-3: effective bounds differ.
        assert by_field["P"] > by_field["QRAIN"] * 100

    def test_checkpoint_resume_skips_done(self):
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P", "U"])
        store = CheckpointStore(":memory:")
        runner = ExperimentRunner(
            ds, compressors=("szx",), bounds=(1e-4,), schemes=("tao2019",), store=store
        )
        calls = []

        def counting(task, worker):
            calls.append(task.key())
            return runner.run_task(task, worker)

        runner.collect(task_fn=counting)
        first = len(calls)
        runner.collect(task_fn=counting)
        assert len(calls) == first  # nothing re-ran

    def test_nbytes_respects_dtype(self):
        """The scheduler's byte estimate must honor the entry dtype —
        4 bytes/element was hardcoded before."""
        from repro.core.data import PressioData
        from repro.dataset.base import DatasetPlugin

        class TypedDataset(DatasetPlugin):
            id = "typed"
            dtypes = ("float64", "int16", "float32")

            def __len__(self):
                return len(self.dtypes)

            def load_metadata(self, index):
                return {
                    "data_id": f"typed/{index}",
                    "shape": (4, 4, 2),
                    "dtype": self.dtypes[index],
                }

            def load_data(self, index):
                return PressioData(
                    np.zeros((4, 4, 2), dtype=self.dtypes[index]),
                    metadata=self.load_metadata(index),
                )

        runner = ExperimentRunner(
            TypedDataset(), compressors=("szx",), bounds=(1e-4,), schemes=()
        )
        tasks = runner.build_tasks()
        by_id = {t.data_id: t.nbytes for t in tasks}
        assert by_id["typed/0"] == 4 * 4 * 2 * 8  # float64
        assert by_id["typed/1"] == 4 * 4 * 2 * 2  # int16
        assert by_id["typed/2"] == 4 * 4 * 2 * 4  # float32

    def test_process_engine_collection(self, tmp_path):
        """Collection through worker processes: per-worker dataset init,
        checkpoint writes in the parent, buffered flush."""
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0, 12], fields=["P", "U"])
        store = CheckpointStore(str(tmp_path / "proc.db"), flush_every=4)
        runner = ExperimentRunner(
            ds,
            compressors=("szx",),
            bounds=(1e-4,),
            schemes=("tao2019",),
            store=store,
            queue=TaskQueue(2, "process"),
        )
        obs, stats, _ = runner.collect()
        assert stats.failed == 0
        assert len(obs) == 4
        assert len(stats.per_worker) >= 1
        # The flush at the end of collect() made everything durable.
        reopened = CheckpointStore(str(tmp_path / "proc.db"))
        assert reopened.count() == 4

    def test_fault_injection_with_retry_completes(self):
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P", "U", "TC"])
        runner = ExperimentRunner(
            ds,
            compressors=("szx",),
            bounds=(1e-4,),
            schemes=("tao2019",),
            queue=TaskQueue(1, "serial", max_retries=2),
        )
        fn = FaultInjector(runner.run_task, fail_first_attempt_every=2)
        obs, stats, _ = runner.collect(task_fn=fn)
        assert stats.failed == 0
        assert stats.retries > 0
        assert len(obs) == 3


class TestEvaluation:
    def test_table2_rows_complete(self, runner_and_obs):
        runner, obs, _ = runner_and_obs
        rows = runner.table2(obs)
        names = [(r.method, r.compressor) for r in rows]
        assert ("sz3", "sz3") in names and ("zfp", "zfp") in names
        assert ("jin2022", "zfp") in names

    def test_jin_zfp_unsupported_row(self, runner_and_obs):
        runner, obs, _ = runner_and_obs
        rows = runner.table2(obs)
        jin_zfp = next(r for r in rows if r.method == "jin2022" and r.compressor == "zfp")
        assert not jin_zfp.supported
        assert math.isnan(jin_zfp.medape_pct)

    def test_quality_ordering_matches_paper(self, runner_and_obs):
        """rahman (trained) beats khan (sampled) on the sparse/dense mix."""
        runner, obs, _ = runner_and_obs
        rows = {(r.method, r.compressor): r for r in runner.table2(obs)}
        assert rows[("rahman2023", "sz3")].medape_pct < rows[("khan2023", "sz3")].medape_pct
        assert rows[("rahman2023", "zfp")].medape_pct < rows[("khan2023", "zfp")].medape_pct

    def test_timing_stages_present(self, runner_and_obs):
        runner, obs, _ = runner_and_obs
        rows = {(r.method, r.compressor): r for r in runner.table2(obs)}
        khan = rows[("khan2023", "sz3")]
        assert khan.error_dependent.available and not khan.error_agnostic.available
        rahman = rows[("rahman2023", "sz3")]
        assert rahman.error_agnostic.available and not rahman.error_dependent.available
        assert rahman.fit.available and rahman.inference.available
        assert rahman.training.available
        baseline = rows[("sz3", "sz3")]
        assert baseline.compress.available and baseline.decompress.available

    def test_report_rendering(self, runner_and_obs):
        runner, obs, _ = runner_and_obs
        rows = runner.table2(obs)
        text = format_table2(rows, title="t")
        assert "MedAPE" in text and "sz3 rahman2023" in text and "N/A" in text
        records = rows_to_records(rows)
        assert len(records) == len(rows)
        assert all("medape_pct" in r for r in records)


class TestFaultDomainCollection:
    """collect() under failures: the result triple, the ledger, healing."""

    @staticmethod
    def _small_runner(store=None):
        ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P", "U"])
        return ExperimentRunner(
            ds,
            compressors=("szx",),
            bounds=(1e-4,),
            schemes=("tao2019",),
            store=store or CheckpointStore(":memory:"),
        )

    def test_collect_returns_failures(self):
        from repro.bench import CollectionResult
        from repro.core import TaskFailedError

        runner = self._small_runner()
        bad = runner.build_tasks()[0].key()

        def fn(task, worker):
            if task.key() == bad:
                raise TaskFailedError("always fails", task_key=task.key())
            return runner.run_task(task, worker)

        with pytest.warns(UserWarning, match="failed after retries"):
            result = runner.collect(task_fn=fn)
        assert isinstance(result, CollectionResult)
        obs, stats, failures = result
        assert stats.failed == 1 and len(failures) == 1
        assert failures[0].task.key() == bad
        assert "always fails" in failures[0].error
        # The failure is also in the persistent ledger.
        assert runner.store.failed_keys() == {bad}

    def test_permanent_failures_skipped_on_resume(self):
        from repro.core import Status, UnsupportedError

        runner = self._small_runner()
        bad = runner.build_tasks()[0].key()
        calls = []

        def fn(task, worker):
            calls.append(task.key())
            if task.key() == bad:
                raise UnsupportedError("can never succeed")
            return runner.run_task(task, worker)

        with pytest.warns(UserWarning):
            _, _, failures = runner.collect(task_fn=fn)
        assert failures[0].status == int(Status.UNSUPPORTED)
        assert failures[0].attempts == 1  # quarantined, not retried
        assert runner.store.poison_keys() == {bad}
        first_calls = len(calls)
        # Resume: the poison task is known hopeless and is not re-run.
        runner.collect(task_fn=fn)
        assert len(calls) == first_calls

    def test_recovered_task_clears_ledger(self):
        from repro.core import TaskFailedError

        runner = self._small_runner()
        bad = runner.build_tasks()[0].key()
        fail_now = [True]

        def fn(task, worker):
            if task.key() == bad and fail_now[0]:
                raise TaskFailedError("transient outage", task_key=task.key())
            return runner.run_task(task, worker)

        runner.queue = TaskQueue(1, "serial", max_retries=0)
        with pytest.warns(UserWarning):
            runner.collect(task_fn=fn)
        assert runner.store.failed_keys() == {bad}
        fail_now[0] = False
        _, stats, failures = runner.collect(task_fn=fn)
        assert stats.failed == 0 and failures == []
        assert runner.store.failed_keys() == set()

    def test_resume_heals_corrupted_checkpoint(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "heal.db"))
        runner = self._small_runner(store)
        obs, _, _ = runner.collect()
        keys = [t.key() for t in runner.build_tasks()]
        victim = keys[0]
        store.corrupt_rows([victim])
        # The resume's verify pass quarantines the damaged row and the
        # queue recomputes exactly that task.
        calls = []

        def counting(task, worker):
            calls.append(task.key())
            return runner.run_task(task, worker)

        with pytest.warns(UserWarning, match="quarantined"):
            obs2, stats, _ = runner.collect(task_fn=counting)
        assert calls == [victim]
        assert len(obs2) == len(obs)
        assert store.pending(keys) == []

    def test_chaos_plan_threads_through_collect(self, tmp_path):
        from repro.bench import ChaosPlan

        runner = self._small_runner()
        runner.queue = TaskQueue(1, "serial", max_retries=2)
        plan = ChaosPlan.from_spec(
            "exception:1.0", seed=5, state_dir=str(tmp_path / "chaos")
        )
        obs, stats, failures = runner.collect(chaos=plan)
        # Every task faulted once and recovered via retry; nothing lost.
        assert failures == [] and stats.failed == 0
        assert stats.retries == len(runner.build_tasks())
        assert plan.injected_counts()["exception"] == stats.retries
