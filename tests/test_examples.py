"""Smoke tests: the shipped examples actually run.

Only the fast examples execute here (the campaign-scale ones are
exercised piecewise by the benchmark suite); each runs in-process via
runpy so import errors, API drift, or renamed options fail loudly.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name: str, capsys) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    assert os.path.exists(path), path
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "estimated CR" in out
    assert "actual CR" in out


def test_compressor_selection(capsys):
    out = run_example("compressor_selection.py", capsys)
    assert "ranking agreement" in out
    # The method's goal: the estimated ranking usually matches.
    line = [l for l in out.splitlines() if "ranking agreement" in l][0]
    matched, total = line.split(":")[1].split("(")[0].strip().split("/")
    assert int(matched) >= int(total) * 0.7


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "compressor_selection.py",
        "parallel_write.py",
        "autotuning.py",
        "distributed_training.py",
        "counterfactual_design.py",
    ],
)
def test_examples_compile(name):
    """Every shipped example at least byte-compiles."""
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    with open(path) as fh:
        compile(fh.read(), path, "exec")
