"""Tests for the prediction-feature metrics (features and probes)."""

import numpy as np
import pytest

from repro.compressors import make_compressor
from repro.core import PressioData, PressioOptions
from repro.core.compressor import clone_compressor
from repro.predict.metrics import (
    BoundSparsityMetric,
    DistortionMetric,
    QuantizedEntropyMetric,
    SampledTrialMetric,
    SZ3StageProbeMetric,
    SZXStageProbeMetric,
    SparsityMetric,
    SpatialMetric,
    SVDTruncationMetric,
    ValueStatsMetric,
    VariogramMetric,
    ZFPStageProbeMetric,
    lag_correlations,
    spatial_diversity,
    spatial_smoothness,
    svd_truncation_rank,
    variogram_slope,
)

OPTS = PressioOptions({"pressio:abs": 1e-3})


def run_metric(metric, array, options=OPTS):
    data = PressioData(np.asarray(array), metadata={"data_id": "m"})
    metric.reset()
    metric.begin_compress_impl(data, options)
    return metric.get_metrics_results().to_dict()


class TestFeatureFunctions:
    def test_lag_correlation_smooth_vs_noise(self, smooth_field, rough_field):
        assert lag_correlations(smooth_field) > 0.9
        assert abs(lag_correlations(rough_field)) < 0.2

    def test_lag_correlation_constant(self):
        assert lag_correlations(np.full((8, 8), 2.0)) == 1.0

    def test_spatial_diversity_sparse_vs_uniform(self, sparse_field, rough_field):
        assert spatial_diversity(sparse_field) > spatial_diversity(rough_field)

    def test_spatial_smoothness_ordering(self, smooth_field, rough_field):
        assert spatial_smoothness(smooth_field) > spatial_smoothness(rough_field)

    def test_variogram_slope_smooth_positive(self, smooth_field):
        # Smooth data: variance grows with lag → positive slope.
        assert variogram_slope(smooth_field) > 0.5

    def test_variogram_slope_noise_flat(self, rough_field):
        assert abs(variogram_slope(rough_field)) < 0.3

    def test_svd_rank_low_for_separable(self):
        x = np.outer(np.sin(np.linspace(0, 3, 50)), np.cos(np.linspace(0, 3, 40)))
        assert svd_truncation_rank(x, 0.999) <= 2

    def test_svd_rank_high_for_noise(self):
        noise = np.random.default_rng(0).standard_normal((50, 40))
        assert svd_truncation_rank(noise, 0.999) > 20

    def test_svd_rank_1d_input(self):
        assert svd_truncation_rank(np.sin(np.linspace(0, 10, 400))) >= 1


class TestFeatureMetrics:
    def test_value_stats(self, smooth_field):
        res = run_metric(ValueStatsMetric(), smooth_field)
        assert res["stat:std"] == pytest.approx(float(smooth_field.std()), rel=1e-5)
        assert res["stat:value_range"] > 0
        assert "stat:skewness" in res and "stat:kurtosis" in res

    def test_sparsity_metric(self, sparse_field):
        res = run_metric(SparsityMetric(), sparse_field)
        assert res["sparsity:zero_ratio"] == pytest.approx((sparse_field == 0).mean())
        assert res["sparsity:zero_ratio"] + res["sparsity:nonzero_fraction"] == pytest.approx(1.0)

    def test_spatial_metric_keys(self, smooth_field):
        res = run_metric(SpatialMetric(), smooth_field)
        for key in ("correlation", "diversity", "smoothness", "coding_gain"):
            assert f"spatial:{key}" in res

    def test_variogram_metric(self, smooth_field):
        res = run_metric(VariogramMetric(), smooth_field)
        assert "variogram:slope" in res

    def test_svd_metric_declares_nondeterministic(self):
        from repro.core import NONDETERMINISTIC

        assert NONDETERMINISTIC in SVDTruncationMetric().invalidations

    def test_quantized_entropy_error_dependent(self, smooth_field):
        fine = run_metric(QuantizedEntropyMetric(), smooth_field,
                          PressioOptions({"pressio:abs": 1e-5}))
        coarse = run_metric(QuantizedEntropyMetric(), smooth_field,
                            PressioOptions({"pressio:abs": 1e-1}))
        assert coarse["qentropy:bits"] < fine["qentropy:bits"]

    def test_bound_sparsity_grows_with_bound(self, sparse_field):
        small = run_metric(BoundSparsityMetric(), sparse_field,
                           PressioOptions({"pressio:abs": 1e-8}))
        large = run_metric(BoundSparsityMetric(), sparse_field,
                           PressioOptions({"pressio:abs": 1.0}))
        assert large["bsparsity:below_bound_ratio"] >= small["bsparsity:below_bound_ratio"]
        assert large["bsparsity:below_bound_ratio"] == 1.0

    def test_distortion_metric(self, smooth_field):
        res = run_metric(DistortionMetric(), smooth_field)
        assert res["distortion:sdr_db"] > 0
        assert res["distortion:log_rel_bound"] < 0


class TestProbes:
    def test_sampled_trial_close_on_uniform_data(self, rough_field):
        comp = make_compressor("sz3", pressio__abs=1e-3)
        metric = SampledTrialMetric(clone_compressor(comp), fraction=0.3, seed=0)
        res = run_metric(metric, rough_field)
        assert res["trial:sampled_cr"] > 0.5
        assert res["trial:sample_count"] > 0

    def test_sz3_probe_full(self, smooth_field):
        comp = make_compressor("sz3", pressio__abs=1e-3)
        res = run_metric(SZ3StageProbeMetric(clone_compressor(comp)), smooth_field)
        assert res["sz3probe:huffman_bits_exact"] > 0
        assert res["sz3probe:probed_values"] == smooth_field.size
        assert res["sz3probe:element_bits"] == 32

    def test_sz3_probe_sampled_id_differs(self):
        comp = make_compressor("sz3", pressio__abs=1e-3)
        full = SZ3StageProbeMetric(clone_compressor(comp), fraction=1.0)
        sampled = SZ3StageProbeMetric(clone_compressor(comp), fraction=0.1)
        assert full.id == "sz3probe"
        assert sampled.id == "sz3probe_sampled"

    def test_sz3_probe_bits_track_bound(self, smooth_field):
        comp = make_compressor("sz3", pressio__abs=1e-3)
        probe = SZ3StageProbeMetric(clone_compressor(comp))
        fine = run_metric(probe, smooth_field, PressioOptions({"pressio:abs": 1e-6}))
        coarse = run_metric(probe, smooth_field, PressioOptions({"pressio:abs": 1e-2}))
        assert coarse["sz3probe:huffman_bits_exact"] < fine["sz3probe:huffman_bits_exact"]

    def test_zfp_probe(self, smooth_field):
        comp = make_compressor("zfp", pressio__abs=1e-3)
        res = run_metric(ZFPStageProbeMetric(clone_compressor(comp), fraction=0.3), smooth_field)
        assert res["zfpprobe:ac_bits_per_block"] >= 0
        assert res["zfpprobe:probed_blocks"] >= 8
        assert res["zfpprobe:block_values"] == 64

    def test_szx_probe_constant_fraction(self, sparse_field):
        comp = make_compressor("szx", pressio__abs=1e-2)
        res = run_metric(SZXStageProbeMetric(clone_compressor(comp), fraction=0.5),
                         sparse_field, PressioOptions({"pressio:abs": 1e-2}))
        assert 0.0 <= res["szxprobe:constant_fraction"] <= 1.0

    def test_probe_inside_attached_compressor_no_recursion(self, smooth_field):
        """Probes hold a clone, so attaching them to a compressor and
        compressing must not recurse."""
        comp = make_compressor("sz3", pressio__abs=1e-3)
        probe = SZ3StageProbeMetric(clone_compressor(comp), fraction=0.2)
        comp.set_metrics([probe])
        comp.compress(smooth_field)  # would RecursionError on a shared instance
        assert comp.get_metrics_results().get("sz3probe_sampled:probed_values", 0) > 0
