"""Q1 ablation: invalidation-aware metric reuse (Figure 1 / §4.2).

The paper's first key question: "How to generically enable maximum reuse
of previously observed metrics in predictions to reduce the
computational overhead?"  This ablation sweeps error bounds for the
rahman2023 feature set with and without the evaluator's cache and
measures the speedup — the benefit is exactly the error-agnostic work
that does not repeat.
"""

import time

import pytest

from repro.compressors import make_compressor
from repro.predict import ALL_INVALIDATIONS, get_scheme

BOUNDS = [10.0 ** e for e in (-6, -5, -4, -3, -2)]


def _vrange(data) -> float:
    arr = data.array
    return float(arr.max() - arr.min())


def test_sweep_with_reuse(benchmark, pressure_field):
    scheme = get_scheme("rahman2023")
    vrange = _vrange(pressure_field)

    def sweep():
        comp = make_compressor("sz3", pressio__abs=BOUNDS[0] * vrange)
        evaluator = scheme.req_metrics_opts(comp)
        evaluator.evaluate(pressure_field)
        for eb in BOUNDS[1:]:
            evaluator.set_options({"pressio:abs": eb * vrange})
            evaluator.evaluate(pressure_field, changed=["pressio:abs"])
        return evaluator

    evaluator = benchmark(sweep)
    assert evaluator.reused > 0


def test_sweep_without_reuse(benchmark, pressure_field):
    scheme = get_scheme("rahman2023")
    vrange = _vrange(pressure_field)

    def sweep():
        comp = make_compressor("sz3", pressio__abs=BOUNDS[0] * vrange)
        evaluator = scheme.req_metrics_opts(comp)
        for eb in BOUNDS:
            evaluator.set_options({"pressio:abs": eb * vrange})
            # Naming every class forces full recomputation each step.
            evaluator.evaluate(pressure_field, changed=ALL_INVALIDATIONS)
        return evaluator

    evaluator = benchmark(sweep)
    assert evaluator.reused == 0


def test_reuse_speedup(benchmark, pressure_field):
    """Cached sweep must be decisively faster than the naive sweep."""
    scheme = get_scheme("rahman2023")
    vrange = _vrange(pressure_field)

    def run(reuse: bool) -> float:
        comp = make_compressor("sz3", pressio__abs=BOUNDS[0] * vrange)
        evaluator = scheme.req_metrics_opts(comp)
        t0 = time.perf_counter()
        for k, eb in enumerate(BOUNDS):
            evaluator.set_options({"pressio:abs": eb * vrange})
            changed = (
                ALL_INVALIDATIONS if not reuse
                else (ALL_INVALIDATIONS if k == 0 else ["pressio:abs"])
            )
            evaluator.evaluate(pressure_field, changed=changed)
        return time.perf_counter() - t0

    def measure():
        return run(reuse=True), run(reuse=False)

    cached_s, naive_s = benchmark.pedantic(measure, rounds=3, iterations=1)
    assert cached_s < naive_s
    benchmark.extra_info["speedup"] = round(naive_s / cached_s, 2)
    benchmark.extra_info["bounds_swept"] = len(BOUNDS)


def test_reuse_across_compressor_bound_matrix(benchmark, pressure_field):
    """Interactive development scenario from Q1: evaluating one scheme
    across many (compressor, bound) pairs on the same data — the
    error-agnostic features never recompute."""
    scheme = get_scheme("rahman2023")
    vrange = _vrange(pressure_field)

    def matrix():
        total_computed = 0
        total_reused = 0
        for comp_name in ("sz3", "zfp", "szx"):
            comp = make_compressor(comp_name, pressio__abs=1e-6 * vrange)
            evaluator = scheme.req_metrics_opts(comp)
            for k, eb in enumerate(BOUNDS):
                evaluator.set_options({"pressio:abs": eb * vrange})
                evaluator.evaluate(
                    pressure_field,
                    changed=ALL_INVALIDATIONS if k == 0 else ["pressio:abs"],
                )
            total_computed += evaluator.computed
            total_reused += evaluator.reused
        return total_computed, total_reused

    computed, reused = benchmark(matrix)
    # 3 metrics x 3 compressors x 5 bounds = 45 evaluations; all but the
    # first per compressor are reused (features are error-agnostic).
    assert reused >= computed
    benchmark.extra_info["computed"] = computed
    benchmark.extra_info["reused"] = reused
