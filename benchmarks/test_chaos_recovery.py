"""Chaos-harness ablation: recovery overhead per injected fault class.

The paper's §4.3 resilience story is motivated by fault-prone metric
implementations (the external SECRE/FXRZ bridges crash, hang, and
misreport).  These benches inject each fault class through a seeded
:class:`~repro.bench.faults.ChaosPlan` and measure what recovery costs:
wall-clock overhead versus a clean run of the same campaign, and the
completed-task throughput that survives the chaos.

Every test finishes on the acceptance invariant that matters: after the
chaotic pass (plus the follow-up recovery pass where the fault class
needs one), the checkpoint holds every committed row, reports **zero
pending keys**, and verifies clean.
"""

from __future__ import annotations

import time
import warnings

import pytest

from repro.bench import (
    ChaosPlan,
    CheckpointStore,
    ExperimentRunner,
    RetryPolicy,
    TaskQueue,
)
from repro.dataset import HurricaneDataset


def build_runner(tmp_path, name, queue=None) -> ExperimentRunner:
    ds = HurricaneDataset(shape=(8, 8, 4), timesteps=[0], fields=["P", "U", "V", "W"])
    return ExperimentRunner(
        ds,
        compressors=("szx",),
        bounds=(1e-4, 1e-5),
        schemes=("tao2019",),
        store=CheckpointStore(str(tmp_path / f"{name}.db")),
        queue=queue or TaskQueue(1, "serial", max_retries=2),
    )


def find_seed(spec: str, keys, kind: str, minimum: int = 1) -> int:
    """Smallest seed whose plan selects ≥ *minimum* keys for *kind*.

    Deterministic by construction — the chaos draw is a pure function of
    (seed, class, key) — so the benchmark never depends on luck.
    """
    for seed in range(1000):
        plan = ChaosPlan.from_spec(spec, seed=seed)
        if sum(plan.selects(kind, k) for k in keys) >= minimum:
            return seed
    raise AssertionError(f"no seed selects {minimum} {kind} injections")


def timed_collect(runner, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        t0 = time.perf_counter()
        result = runner.collect(**kwargs)
        elapsed = time.perf_counter() - t0
    return result, elapsed


def assert_recovered(runner) -> None:
    """The acceptance invariant: nothing lost, nothing pending."""
    keys = [t.key() for t in runner.build_tasks()]
    assert runner.store.verify() == []
    assert runner.store.pending(keys) == []


def record(benchmark, fault, baseline_s, chaos_s, stats, n_tasks) -> None:
    benchmark.extra_info["fault_class"] = fault
    benchmark.extra_info["baseline_seconds"] = round(baseline_s, 4)
    benchmark.extra_info["chaos_seconds"] = round(chaos_s, 4)
    benchmark.extra_info["recovery_overhead_pct"] = round(
        100.0 * (chaos_s - baseline_s) / max(baseline_s, 1e-9), 1
    )
    benchmark.extra_info["completed_per_second"] = round(
        stats.completed / max(chaos_s, 1e-9), 2
    )
    benchmark.extra_info["n_tasks"] = n_tasks


def test_exception_fault_recovery(benchmark, tmp_path):
    """Transient exceptions on every task, healed by in-run retries."""
    baseline = build_runner(tmp_path, "exc-base")
    (_, base_stats, _), base_s = timed_collect(baseline)
    assert base_stats.failed == 0

    runner = build_runner(tmp_path, "exc-chaos")
    plan = ChaosPlan.from_spec(
        "exception:1.0", seed=1, state_dir=str(tmp_path / "exc-state")
    )

    def chaotic():
        (obs, stats, failures), elapsed = timed_collect(runner, chaos=plan)
        return obs, stats, failures, elapsed

    obs, stats, failures, elapsed = benchmark.pedantic(chaotic, rounds=1, iterations=1)
    n = len(runner.build_tasks())
    assert stats.retries >= n and not failures
    assert_recovered(runner)
    record(benchmark, "exception", base_s, elapsed, stats, n)


def test_crash_fault_recovery_process_pool(benchmark, tmp_path):
    """A worker process dies mid-collection; the pool is rebuilt and the
    in-flight groups re-run — zero committed rows lost."""
    queue = TaskQueue(2, "process", max_retries=2)
    baseline = build_runner(tmp_path, "crash-base", queue=queue)
    (_, base_stats, _), base_s = timed_collect(baseline)
    assert base_stats.failed == 0

    runner = build_runner(tmp_path, "crash-chaos", TaskQueue(2, "process", max_retries=2))
    keys = [t.key() for t in runner.build_tasks()]
    seed = find_seed("crash:0.4", keys, "crash", minimum=1)
    plan = ChaosPlan.from_spec(
        "crash:0.4", seed=seed, state_dir=str(tmp_path / "crash-state")
    )

    def chaotic():
        (obs, stats, failures), elapsed = timed_collect(runner, chaos=plan)
        return obs, stats, failures, elapsed

    obs, stats, failures, elapsed = benchmark.pedantic(chaotic, rounds=1, iterations=1)
    assert plan.injected_counts()["crash"] >= 1  # a worker really died
    assert stats.pool_rebuilds >= 1
    assert stats.failed == 0 and not failures
    # Follow-up pass on the same checkpoint: nothing left to do.
    (_, stats2, _), _ = timed_collect(runner)
    assert stats2.completed == 0 and stats2.failed == 0
    assert_recovered(runner)
    record(benchmark, "crash", base_s, elapsed, stats, len(keys))


def test_hang_fault_recovery_watchdog(benchmark, tmp_path):
    """A hung task is abandoned by the thread watchdog and re-run."""
    queue = TaskQueue(2, "thread", max_retries=2)
    baseline = build_runner(tmp_path, "hang-base", queue=queue)
    (_, base_stats, _), base_s = timed_collect(baseline)
    assert base_stats.failed == 0

    runner = build_runner(
        tmp_path, "hang-chaos", TaskQueue(2, "thread", max_retries=2, task_timeout=0.5)
    )
    keys = [t.key() for t in runner.build_tasks()]
    seed = find_seed("hang:0.3", keys, "hang", minimum=1)
    plan = ChaosPlan.from_spec(
        "hang:0.3", seed=seed, hang_seconds=10.0,
        state_dir=str(tmp_path / "hang-state"),
    )

    def chaotic():
        (obs, stats, failures), elapsed = timed_collect(runner, chaos=plan)
        return obs, stats, failures, elapsed

    obs, stats, failures, elapsed = benchmark.pedantic(chaotic, rounds=1, iterations=1)
    assert stats.timeouts >= 1 and stats.failed == 0
    assert elapsed < 10.0  # the 10 s hang was abandoned, not waited out
    assert_recovered(runner)
    record(benchmark, "hang", base_s, elapsed, stats, len(keys))


def test_corruption_fault_recovery_verify(benchmark, tmp_path):
    """At-rest payload corruption is quarantined by verify() and only the
    damaged keys are recomputed on the healing pass."""
    runner = build_runner(tmp_path, "corrupt-chaos")
    (_, base_stats, _), base_s = timed_collect(runner)
    assert base_stats.failed == 0
    keys = [t.key() for t in runner.build_tasks()]
    seed = find_seed("corrupt:0.4", keys, "corrupt", minimum=2)
    plan = ChaosPlan.from_spec(
        "corrupt:0.4", seed=seed, state_dir=str(tmp_path / "corrupt-state")
    )
    victims = plan.corrupt_checkpoint(runner.store)
    assert len(victims) >= 2

    recomputed = []

    def counting(task, worker):
        recomputed.append(task.key())
        return runner.run_task(task, worker)

    def heal():
        recomputed.clear()
        (obs, stats, failures), elapsed = timed_collect(runner, task_fn=counting)
        return obs, stats, failures, elapsed

    obs, stats, failures, elapsed = benchmark.pedantic(heal, rounds=1, iterations=1)
    # Only the first (healing) round recomputes; it replays exactly the
    # corrupted keys, nothing more.
    assert set(recomputed) <= set(victims)
    assert_recovered(runner)
    record(benchmark, "corrupt", base_s, elapsed, stats, len(keys))
    benchmark.extra_info["corrupted_rows"] = len(victims)


def test_sink_fault_recovery(benchmark, tmp_path):
    """Checkpoint-sink failures lose the write, not the campaign: the
    failed tasks land in the ledger and the next pass commits them."""
    baseline = build_runner(tmp_path, "sink-base")
    (_, base_stats, _), base_s = timed_collect(baseline)
    assert base_stats.failed == 0

    runner = build_runner(tmp_path, "sink-chaos")
    keys = [t.key() for t in runner.build_tasks()]
    seed = find_seed("sink:0.4", keys, "sink", minimum=1)
    plan = ChaosPlan.from_spec(
        "sink:0.4", seed=seed, state_dir=str(tmp_path / "sink-state")
    )

    def chaotic_then_recover():
        (_, stats1, failures1), t1 = timed_collect(runner, chaos=plan)
        (_, stats2, failures2), t2 = timed_collect(runner, chaos=plan)
        return stats1, failures1, stats2, failures2, t1 + t2

    stats1, failures1, stats2, failures2, elapsed = benchmark.pedantic(
        chaotic_then_recover, rounds=1, iterations=1
    )
    assert stats1.failed >= 1 and len(failures1) == stats1.failed
    assert stats2.failed == 0 and not failures2  # sink markers all spent
    assert runner.store.failed_keys() == set()  # recovery cleared the ledger
    assert_recovered(runner)
    record(benchmark, "sink", base_s, elapsed, stats2, len(keys))


def test_backoff_overhead_deterministic(benchmark, tmp_path):
    """Exponential backoff with seeded jitter: the retry delay schedule
    is identical run-to-run under a fixed seed."""
    policy = RetryPolicy(max_retries=2, base_delay=0.02, jitter=0.2, seed=11)
    runner = build_runner(
        tmp_path, "backoff", TaskQueue(1, "serial", retry_policy=policy)
    )
    plan = ChaosPlan.from_spec(
        "exception:1.0", seed=2, state_dir=str(tmp_path / "backoff-state")
    )
    keys = [t.key() for t in runner.build_tasks()]
    expected = sum(policy.delay(k, 1) for k in keys)

    def chaotic():
        (obs, stats, failures), elapsed = timed_collect(runner, chaos=plan)
        return stats, elapsed

    stats, elapsed = benchmark.pedantic(chaotic, rounds=1, iterations=1)
    assert stats.backoff_seconds == pytest.approx(expected)
    # Delays overlap with still-pending work (a backing-off retry never
    # blocks the queue), so wall time only has to cover a single delay —
    # the last retry has nothing to overlap with.
    assert elapsed >= min(policy.delay(k, 1) for k in keys)
    assert_recovered(runner)
    benchmark.extra_info["scheduled_backoff_seconds"] = round(expected, 4)
