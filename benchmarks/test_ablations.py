"""Design-choice ablations called out by the paper's analysis.

1. **Sparsity correction factor** — §6: "We attribute the vastly
   superior performance [of rahman2023] to the sparsity correction
   factor it uses."  We re-run FXRZ with the sparsity features removed
   and measure the MedAPE degradation on the sparse fields.
2. **Interpolation data augmentation** — §2.2: FXRZ's augmentation
   "brought down the training cost for this class of model
   substantially".  We compare accuracy at a reduced training-set size
   with and without augmentation.
3. **Bandwidth prediction** — §7 future work 4: FXRZ retargeted at
   compression bandwidth.
4. **ZPerf counterfactuals** — §2.2: predict a compressor configuration
   that was never run and compare against actually running it.
5. **SECRE sampling fraction** — the accuracy/speed dial of the
   sampling schemes (more samples → closer to jin's full-data probe).
"""

import numpy as np
import pytest

from repro.compressors import make_compressor
from repro.core import SizeMetrics
from repro.mlkit import GroupKFold, medape
from repro.predict import get_scheme
from repro.predict.schemes.fxrz import FXRZPredictor, Rahman2023Scheme


def _sz3_rows(observations, scheme_id="rahman2023"):
    rows = [
        dict(o) for o in observations
        if o["compressor"] == "sz3" and o.get(f"scheme:{scheme_id}:supported")
    ]
    y = np.asarray([o["size:compression_ratio"] for o in rows])
    groups = np.asarray([o["field"] for o in rows])
    return rows, y, groups


def _grouped_oof(predictor_factory, rows, y, groups, k=5):
    oof = np.full(y.shape, np.nan)
    for train, val in GroupKFold(min(k, np.unique(groups).size)).split(groups):
        predictor = predictor_factory()
        predictor.fit([rows[i] for i in train], y[train])
        oof[val] = predictor.predict_many([rows[i] for i in val])
    return oof


def test_sparsity_correction_ablation(benchmark, observations):
    """Removing the sparsity features must hurt, most on sparse fields."""
    from repro.dataset import SPARSE_THRESHOLDS

    rows, y, groups = _sz3_rows(observations)
    scheme = get_scheme("rahman2023")
    comp = make_compressor("sz3", pressio__abs=1e-3)

    no_sparsity_keys = [
        k for k in scheme.feature_keys() if not k.startswith("sparsity:")
    ]

    def with_factory():
        return scheme.get_predictor(comp)

    def without_factory():
        from repro.mlkit import RandomForestRegressor

        return FXRZPredictor(
            RandomForestRegressor(n_estimators=30, max_depth=12, random_state=0),
            no_sparsity_keys,
            sparsity_correction=False,
        )

    def run():
        oof_with = _grouped_oof(with_factory, rows, y, groups)
        oof_without = _grouped_oof(without_factory, rows, y, groups)
        return oof_with, oof_without

    oof_with, oof_without = benchmark.pedantic(run, rounds=1, iterations=1)
    sparse_idx = [i for i, o in enumerate(rows) if o["field"] in SPARSE_THRESHOLDS]
    m_with = medape(y[sparse_idx], oof_with[sparse_idx])
    m_without = medape(y[sparse_idx], oof_without[sparse_idx])
    benchmark.extra_info["sparse_fields_with_correction"] = round(m_with, 2)
    benchmark.extra_info["sparse_fields_without_correction"] = round(m_without, 2)
    assert m_with <= m_without * 1.1, (
        "the sparsity features should not hurt on sparse fields"
    )


def test_augmentation_ablation(benchmark, observations):
    """With few real observations, augmentation should help (or at
    least not hurt) — the FXRZ training-cost-reduction claim."""
    rows, y, groups = _sz3_rows(observations)
    # Keep only 2 observations per field → scarce-training regime.
    keep: list[int] = []
    seen: dict[str, int] = {}
    for i, g in enumerate(groups):
        if seen.get(g, 0) < 2:
            keep.append(i)
            seen[g] = seen.get(g, 0) + 1
    rows = [rows[i] for i in keep]
    y = y[keep]
    groups = groups[keep]

    def factory(augment_factor):
        def make():
            return get_scheme(
                "rahman2023", augment_factor=augment_factor
            ).get_predictor(make_compressor("sz3", pressio__abs=1e-3))
        return make

    def run():
        plain = _grouped_oof(factory(1.0), rows, y, groups)
        augmented = _grouped_oof(factory(4.0), rows, y, groups)
        return medape(y, plain), medape(y, augmented)

    m_plain, m_augmented = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["scarce_no_augment"] = round(m_plain, 2)
    benchmark.extra_info["scarce_with_augment"] = round(m_augmented, 2)
    assert m_augmented <= m_plain * 1.35  # must not substantially hurt


def test_bandwidth_prediction(benchmark, runner, observations):
    """Future work 4: predict compression bandwidth with FXRZ features."""
    scheme = get_scheme("rahman2023_bandwidth")
    # The campaign was collected with the CR-targeted rahman2023 scheme;
    # the bandwidth variant consumes the identical metric set, so its
    # support flag aliases the original's.
    observations = [
        {**o, "scheme:rahman2023_bandwidth:supported": o.get("scheme:rahman2023:supported", False)}
        for o in observations
    ]
    row = benchmark.pedantic(
        runner.evaluate_scheme,
        args=(scheme, "sz3", observations),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["bandwidth_medape"] = round(row.medape_pct, 2)
    benchmark.extra_info["n_observations"] = row.n_observations
    # Bandwidth is runtime-noisy; require it to be a usable estimate.
    assert row.medape_pct < 100.0


def test_zperf_counterfactual_accuracy(benchmark, hurricane):
    """Predict the CR of sz3 with a *different* predictor stage without
    running that configuration, then check against actually running it."""
    scheme = get_scheme("wang2023")
    comp = make_compressor("sz3", pressio__abs=1e-3)

    entries = [hurricane.load_data(i) for i in range(0, len(hurricane), 3)]

    def collect_and_fit():
        rows, targets = [], []
        for data in entries:
            arr = data.array
            eb = 1e-4 * float(arr.max() - arr.min() or 1.0)
            c = make_compressor("sz3", pressio__abs=eb)
            res = scheme.req_metrics_opts(c).evaluate(data).to_dict()
            rows.append((res, eb))
            size = SizeMetrics()
            c.set_metrics([size])
            c.compress(data)
            targets.append(c.get_metrics_results()["size:compression_ratio"])
        predictor = scheme.get_predictor(comp)
        predictor.fit([r for r, _ in rows], targets)
        return predictor, rows

    predictor, rows = benchmark.pedantic(collect_and_fit, rounds=1, iterations=1)

    cf_preds, cf_truths = [], []
    for (res, eb), data in zip(rows, entries):
        cf_preds.append(predictor.predict_counterfactual(res, order=2))
        actual = make_compressor("sz3", pressio__abs=eb)
        actual.set_options({"sz3:predictor": "lorenzo2"})
        size = SizeMetrics()
        actual.set_metrics([size])
        actual.compress(data)
        cf_truths.append(actual.get_metrics_results()["size:compression_ratio"])
    err = medape(cf_truths, cf_preds)
    benchmark.extra_info["counterfactual_medape"] = round(err, 2)
    assert err < 120.0  # counterfactuals are coarse but must be usable


@pytest.mark.parametrize("fraction", [0.02, 0.1, 0.4])
def test_secre_sampling_fraction(benchmark, observations, fraction, hurricane):
    """More sampling → khan converges towards jin's full-data accuracy."""
    scheme = get_scheme("khan2023", fraction=fraction)
    truths, preds = [], []

    def run():
        truths.clear()
        preds.clear()
        for i in range(0, len(hurricane), 5):
            data = hurricane.load_data(i)
            arr = data.array
            eb = 1e-4 * float(arr.max() - arr.min() or 1.0)
            comp = make_compressor("sz3", pressio__abs=eb)
            res = scheme.req_metrics_opts(comp).evaluate(data).to_dict()
            preds.append(scheme.get_predictor(comp).predict(res))
            size = SizeMetrics()
            comp.set_metrics([size])
            comp.compress(data)
            truths.append(comp.get_metrics_results()["size:compression_ratio"])
        return medape(truths, preds)

    err = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["medape"] = round(err, 2)
    benchmark.extra_info["fraction"] = fraction
