"""Harness scaling: engine throughput and checkpoint flush batching.

The paper's pitch for LibPressio-Predict-Bench (§4.3) is that collection
must scale and survive faults; Underwood et al.'s black-box prediction
line argues the per-datum collection cost must stay cheap.  These
benches measure the harness itself:

* serial vs thread vs process wall time on a latency-bound task mix
  (data-load waits dominate task runtimes, per the paper's observation —
  that is exactly the regime where worker parallelism pays even on one
  core);
* checkpoint commits under buffered flush — at most one commit per
  flush interval, against one commit per task before.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.bench import CheckpointStore, Task, TaskQueue

#: Simulated data-load latency per task (seconds).  Large enough that
#: scheduling overhead (thread wakeups, process forks) cannot swamp it.
LOAD_SECONDS = 0.015
N_DATA = 12
PER_DATA = 4


def make_tasks(n_data: int = N_DATA, per_data: int = PER_DATA) -> list[Task]:
    tasks = []
    for d in range(n_data):
        for k in range(per_data):
            tasks.append(
                Task(
                    data_index=d,
                    data_id=f"data/{d}",
                    compressor_id="sz3",
                    compressor_options={"pressio:abs": 10.0 ** -(k + 2)},
                    dataset_config={"entry:data_id": f"data/{d}"},
                    replicate=0,
                    nbytes=1 << 20,
                )
            )
    return tasks


def simulated_collection_task(task: Task, worker: int) -> dict:
    """One collection task: blocking load wait + a small NumPy kernel.

    Module-level so the process engine can pickle it.
    """
    time.sleep(LOAD_SECONDS)
    arr = np.linspace(0.0, 1.0, 2048)
    return {"mean": float(arr.mean()), "worker": worker}


def _timed_run(queue: TaskQueue) -> tuple[float, object]:
    t0 = time.perf_counter()
    results, stats = queue.run(make_tasks(), simulated_collection_task)
    elapsed = time.perf_counter() - t0
    assert stats.failed == 0
    assert stats.completed == N_DATA * PER_DATA
    return elapsed, stats


class TestEngineScaling:
    def test_process_beats_serial_at_4_workers(self, record_property):
        t_serial, _ = _timed_run(TaskQueue(1, "serial"))
        t_process, stats = _timed_run(TaskQueue(4, "process"))
        record_property("serial_s", round(t_serial, 4))
        record_property("process_s", round(t_process, 4))
        record_property("process_per_worker", dict(stats.per_worker))
        assert t_process < t_serial, (
            f"process engine ({t_process:.3f}s) must beat serial ({t_serial:.3f}s)"
        )

    def test_thread_beats_serial_at_4_workers(self, record_property):
        t_serial, _ = _timed_run(TaskQueue(1, "serial"))
        t_thread, stats = _timed_run(TaskQueue(4, "thread"))
        record_property("serial_s", round(t_serial, 4))
        record_property("thread_s", round(t_thread, 4))
        assert t_thread < t_serial

    def test_engine_matrix_reported(self, record_property):
        """One sweep over the full engine matrix, for the record."""
        times = {}
        for engine, workers in (("serial", 1), ("thread", 4), ("process", 4)):
            elapsed, stats = _timed_run(TaskQueue(workers, engine))
            times[f"{engine}x{workers}"] = round(elapsed, 4)
            summary = stats.stage_summary()
            record_property(f"{engine}_stage_summary", {
                k: round(v, 4) for k, v in summary.items()
            })
        record_property("wall_times", times)
        # Both parallel engines must beat serial on latency-bound tasks.
        assert times["threadx4"] < times["serialx1"]
        assert times["processx4"] < times["serialx1"]

    def test_queue_wait_accounted_under_contention(self):
        """With one worker-slot's worth of tasks outstanding, workers
        blocked on the dispatcher must book their idle time."""
        _, stats = _timed_run(TaskQueue(4, "thread"))
        assert stats.execute_seconds >= N_DATA * PER_DATA * LOAD_SECONDS * 0.9
        assert stats.queue_wait_seconds >= 0.0


class TestCheckpointFlushBatching:
    @pytest.mark.parametrize("flush_every", [1, 16])
    def test_at_most_one_commit_per_interval(self, tmp_path, flush_every):
        n_tasks = 64
        store = CheckpointStore(
            os.path.join(str(tmp_path), f"flush{flush_every}.db"),
            flush_every=flush_every,
        )
        base = store.commit_count
        queue = TaskQueue(2, "thread")

        def on_result(result):
            store.put(result.task.key(), result.payload)

        tasks = make_tasks(n_data=16, per_data=4)
        assert len(tasks) == n_tasks
        results, stats = queue.run(
            tasks, lambda t, w: {"v": 1}, on_result=on_result
        )
        store.flush()
        commits = store.commit_count - base
        # ≤ 1 commit per flush interval (+1 for the tail flush).
        assert commits <= n_tasks // flush_every + 1
        assert store.count() == n_tasks
        store.close()

    def test_batched_flush_is_faster(self, tmp_path, record_property):
        """The per-result commit+fsync is the collection hot path's
        dominant fixed cost; batching amortises it."""
        n = 400
        payload = {f"metric:{i}": float(i) * 1.5 for i in range(40)}

        def fill(store):
            t0 = time.perf_counter()
            for i in range(n):
                store.put(f"key-{i}", payload)
            store.flush()
            return time.perf_counter() - t0

        per_result = CheckpointStore(os.path.join(str(tmp_path), "per.db"))
        t_per = fill(per_result)
        batched = CheckpointStore(
            os.path.join(str(tmp_path), "batch.db"), flush_every=64
        )
        t_batch = fill(batched)
        record_property("per_result_s", round(t_per, 4))
        record_property("batched_s", round(t_batch, 4))
        record_property("speedup", round(t_per / t_batch, 2))
        assert batched.commit_count < per_result.commit_count
        # Commit batching must not be slower; usually it is much faster.
        assert t_batch <= t_per
