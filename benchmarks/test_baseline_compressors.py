"""§6 baseline: compressor compress/decompress wall times.

Paper (Hurricane, per field): SZ3 compression 322.8 ± 30.1 ms,
decompression 101.98 ± 26.72 ms; ZFP 65.49 ± 25.33 / 33.86 ± 16.21 ms.
"This is the number that sampling methods aim to defeat."

Expected shape on our substrate: ZFP compresses and decompresses several
times faster than SZ3 (no entropy-coding stage), with absolute numbers
scaled down by the smaller synthetic grid.
"""

import pytest

from repro.compressors import make_compressor

PAPER_MS = {
    ("sz3", "compress"): 322.8,
    ("sz3", "decompress"): 101.98,
    ("zfp", "compress"): 65.49,
    ("zfp", "decompress"): 33.86,
}


def _eb(data) -> float:
    arr = data.array
    return 1e-4 * float(arr.max() - arr.min())


@pytest.mark.parametrize("name", ["sz3", "zfp", "szx"])
def test_compress_time(benchmark, name, pressure_field):
    comp = make_compressor(name, pressio__abs=_eb(pressure_field))
    result = benchmark(comp.compress, pressure_field)
    benchmark.extra_info["compression_ratio"] = pressure_field.nbytes / result.nbytes
    if (name, "compress") in PAPER_MS:
        benchmark.extra_info["paper_ms"] = PAPER_MS[(name, "compress")]


@pytest.mark.parametrize("name", ["sz3", "zfp", "szx"])
def test_decompress_time(benchmark, name, pressure_field):
    comp = make_compressor(name, pressio__abs=_eb(pressure_field))
    stream = comp.compress(pressure_field)
    benchmark(comp.decompress, stream)
    if (name, "decompress") in PAPER_MS:
        benchmark.extra_info["paper_ms"] = PAPER_MS[(name, "decompress")]


def test_zfp_faster_than_sz3(benchmark, observations):
    """The paper's headline baseline contrast: ZFP ~5x faster than SZ3.

    Measured the way the paper does — averaged over *all* fields,
    timesteps and both bounds (a single smooth field at a liberal bound
    can flip the ordering because SZ3's Huffman stage gets trivially
    cheap there; the tight-bound sparse/dense mix is where the entropy
    coder's cost dominates).
    """
    import numpy as np

    def summarise():
        out = {}
        for name in ("sz3", "zfp"):
            times = [
                o["time:compress"] for o in observations
                if o["compressor"] == name and "time:compress" in o
            ]
            out[name] = float(np.mean(times))
        return out

    times = benchmark.pedantic(summarise, rounds=1, iterations=1)
    assert times["zfp"] < times["sz3"], (
        f"expected zfp faster than sz3 on campaign average, got {times}"
    )
    benchmark.extra_info["sz3_mean_ms"] = round(times["sz3"] * 1e3, 2)
    benchmark.extra_info["zfp_mean_ms"] = round(times["zfp"] * 1e3, 2)
    benchmark.extra_info["speedup"] = round(times["sz3"] / times["zfp"], 2)
    benchmark.extra_info["paper_speedup"] = round(322.8 / 65.49, 2)
