"""Extended experiment: the black-box trained schemes on Table 2's
protocol.

The paper excluded krasowska2021 / underwood2023 / ganguli2023 "due to
time constraints" (§5) while predicting (§6) that the mixture model of
ganguli2023 "would also do well in this use case" — its paper reports a
worst-case error under 12.5% on a hurricane subset.  This bench closes
that gap: same dataset, same grouped 10-fold CV, all schemes.

Expected shape: the trained black-box schemes beat the sampling-based
khan2023, and the mixture+conformal ganguli2023 handles the sparse/dense
mix better than the single linear fit of krasowska2021.
"""

import numpy as np
import pytest

from repro.bench import ExperimentRunner, format_table2
from repro.compressors import make_compressor
from repro.mlkit import coverage
from repro.predict import get_scheme

BLACKBOX = ("krasowska2021", "underwood2023", "ganguli2023")


@pytest.fixture(scope="module")
def blackbox_runner(hurricane, tmp_path_factory):
    from repro.bench import CheckpointStore

    store = CheckpointStore(
        str(tmp_path_factory.mktemp("blackbox") / "checkpoint.db")
    )
    return ExperimentRunner(
        hurricane,
        compressors=("sz3", "zfp"),
        bounds=(1e-6, 1e-4),
        schemes=BLACKBOX + ("khan2023",),
        store=store,
        n_folds=10,
    )


@pytest.fixture(scope="module")
def blackbox_obs(blackbox_runner):
    obs, stats, _ = blackbox_runner.collect()
    assert stats.failed == 0
    return obs


def test_blackbox_quality(benchmark, blackbox_runner, blackbox_obs):
    rows = benchmark.pedantic(
        blackbox_runner.table2, args=(blackbox_obs,), rounds=1, iterations=1
    )
    by_key = {(r.method, r.compressor): r for r in rows}
    print()
    print(format_table2(rows, title="Black-box schemes (extended experiment)"))
    for comp in ("sz3", "zfp"):
        ganguli = by_key[("ganguli2023", comp)].medape_pct
        krasowska = by_key[("krasowska2021", comp)].medape_pct
        # §6's expectation: the mixture model handles the sparse/dense
        # split better than a single linear fit.
        assert ganguli < krasowska, (
            f"mixture model should beat single linear fit on {comp}"
        )
        # Every black-box scheme must remain a usable estimator.
        for m in BLACKBOX:
            measured = by_key[(m, comp)].medape_pct
            assert measured < 120.0, (m, comp, measured)
            benchmark.extra_info[f"{comp}_{m}_medape"] = round(measured, 2)
        # khan2023 is reported for context: on this substrate the
        # stage-model methods enjoy a structural advantage (the codec
        # *is* their model), so no cross-family ordering is asserted.
        benchmark.extra_info[f"{comp}_khan2023_medape"] = round(
            by_key[("khan2023", comp)].medape_pct, 2
        )


def test_ganguli_conformal_coverage(benchmark, blackbox_obs):
    """Ganguli's differentiator: calibrated bounds on the estimate.

    Split conformal guarantees marginal coverage under exchangeability,
    so the headline check uses a random (exchangeable) split.  Coverage
    under *field-level* covariate shift — training without some fields
    entirely — is also measured and reported: it degrades, which is
    exactly why the HDF5 use case keeps an append fallback.
    """

    def run(split_by_field: bool) -> float:
        scheme = get_scheme("ganguli2023", alpha=0.1)
        comp = make_compressor("sz3", pressio__abs=1e-3)
        obs = [o for o in blackbox_obs if o["compressor"] == "sz3"]
        if split_by_field:
            fields = sorted({o["field"] for o in obs})
            held_out = set(fields[::4])
            train = [o for o in obs if o["field"] not in held_out]
            test = [o for o in obs if o["field"] in held_out]
        else:
            rng = np.random.default_rng(0)
            perm = rng.permutation(len(obs))
            cut = len(obs) * 3 // 4
            train = [obs[i] for i in perm[:cut]]
            test = [obs[i] for i in perm[cut:]]
        y_train = [o["size:compression_ratio"] for o in train]
        y_test = np.asarray([o["size:compression_ratio"] for o in test])
        predictor = scheme.get_predictor(comp)
        predictor.fit(train, y_train)
        intervals = [predictor.predict_interval(o) for o in test]
        lo = np.asarray([iv[1] for iv in intervals])
        hi = np.asarray([iv[2] for iv in intervals])
        return coverage(y_test, lo, hi)

    def measure():
        return run(split_by_field=False), run(split_by_field=True)

    cov_iid, cov_shift = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["coverage_exchangeable"] = round(cov_iid, 3)
    benchmark.extra_info["coverage_field_shift"] = round(cov_shift, 3)
    benchmark.extra_info["nominal"] = 0.9
    assert cov_iid >= 0.7  # finite-sample slack around the 0.9 nominal


def test_underwood_stage_split(benchmark, blackbox_obs):
    """Underwood's profile: heavy error-agnostic stage, light
    error-dependent stage (the amortisation profile of §6)."""
    agn = [
        o["time:underwood2023:error_agnostic"]
        for o in blackbox_obs
        if "time:underwood2023:error_agnostic" in o
    ]
    dep = [
        o["time:underwood2023:error_dependent"]
        for o in blackbox_obs
        if "time:underwood2023:error_dependent" in o
    ]

    def summarise():
        return float(np.mean(agn)), float(np.mean(dep))

    agn_mean, dep_mean = benchmark.pedantic(summarise, rounds=1, iterations=1)
    assert agn_mean > dep_mean
    benchmark.extra_info["error_agnostic_ms"] = round(agn_mean * 1e3, 3)
    benchmark.extra_info["error_dependent_ms"] = round(dep_mean * 1e3, 3)
