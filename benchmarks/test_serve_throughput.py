"""Serving throughput: burst behaviour plus the fleet/cache matrix.

Two experiments share ``BENCH_serve.json``:

* **Burst cell** (PR-4's original) — ``N_QUERIES`` concurrent predicts
  on precomputed feature rows against one server: zero shed, bounded
  p99, micro-batching engaged.
* **Fleet matrix** — featurize-heavy *what-if* traffic (raw fields,
  repeated across bounds and clients: the workload §5 names as the
  serving hot path) against {1 worker, ``FLEET_WORKERS`` workers} ×
  {cache off, shared cache cold, shared cache warm}, plus a chaos cell
  that SIGKILLs a worker and fans out a fleet-wide refresh mid-run.
  Headlines asserted here: warm-fleet QPS ≥ ``QPS_SPEEDUP_FLOOR``× the
  single-worker cache-off baseline, featurize-seconds reduction ≥
  ``FEAT_REDUCTION_FLOOR``, and zero failed queries through the chaos
  cell.  The host core count is recorded in the artifact — on a 1-core
  box the speed-up is the cache's (featurize work disappears), on a
  multi-core box the workers' CPU scaling stacks on top.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import warnings

import numpy as np
import pytest

from repro.predict.scheme import get_scheme
from repro.serve import (
    ModelRegistry,
    PredictionClient,
    PredictionServer,
    ServeFleet,
    ServerThread,
    encode_array,
    registry_key,
    scheme_params,
)

ARTIFACT = "BENCH_serve.json"
N_QUERIES = 100
#: Generous bound for CI boxes; interactive runs land far below it.
P99_BUDGET_MS = 1500.0
BOUND = 1e-4

#: Fleet matrix shape: the what-if burst is N_QUERIES total, spread over
#: WHATIF_CLIENTS persistent connections.
FLEET_WORKERS = 4
WHATIF_CLIENTS = 10
WHATIF_FIELDS = 4
WHATIF_BOUNDS = (1e-6, 1e-4)  # both published; rahman2023 features are
#: bound-insensitive, so the sweep shares cache entries across bounds.
QPS_SPEEDUP_FLOOR = 4.0
FEAT_REDUCTION_FLOOR = 0.90


@pytest.fixture(scope="module")
def registry(runner, observations, tmp_path_factory):
    reg = ModelRegistry(str(tmp_path_factory.mktemp("serve-registry")))
    with warnings.catch_warnings():
        # partial coverage (e.g. jin2022 on zfp) is expected, not news
        warnings.simplefilter("ignore")
        receipts = runner.publish(reg, observations)
    assert receipts, "campaign published no models"
    return reg


def test_serve_throughput_100_concurrent(registry, observations, record_property):
    scheme = get_scheme("rahman2023")
    key = registry_key(
        scheme.id,
        "sz3",
        {"pressio:abs": BOUND, "pressio:abs_is_relative": True},
        scheme_params(scheme),
    )
    rows = [
        dict(o)
        for o in observations
        if o.get("compressor") == "sz3"
        and float(o.get("bound", 0.0)) == BOUND
        and o.get("scheme:rahman2023:supported")
    ]
    assert rows, "campaign produced no usable feature rows"

    server = PredictionServer(
        registry,
        batch_window_ms=10.0,
        max_batch=64,
        max_in_flight=2 * N_QUERIES,
        max_queue_depth=4 * N_QUERIES,
    )
    responses: list = [None] * N_QUERIES
    barrier = threading.Barrier(N_QUERIES + 1)

    def worker(i: int) -> None:
        with PredictionClient(*thread.address) as client:
            barrier.wait()
            responses[i] = client.predict(key, results=rows[i % len(rows)])

    with ServerThread(server) as thread:
        with PredictionClient(*thread.address) as client:
            client.predict(key, results=rows[0])  # cold load outside the burst
        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(N_QUERIES)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join(60)
        wall = time.perf_counter() - t0
        with PredictionClient(*thread.address) as client:
            stats = client.stats()

    assert all(r is not None and r["status"] == "ok" for r in responses), (
        "a query failed or hung"
    )
    assert stats["shed"] == 0, f"provisioned burst shed {stats['shed']} request(s)"
    assert stats["completed"] == N_QUERIES + 1
    p99_ms = stats["latency_p99_ms"]
    assert p99_ms < P99_BUDGET_MS, f"p99 {p99_ms:.1f}ms over {P99_BUDGET_MS}ms budget"
    # micro-batching must engage under a 100-way burst
    assert stats["mean_batch_size"] > 1.0
    assert stats["predict_calls"] < N_QUERIES

    payload = {
        "scale": os.environ.get("REPRO_BENCH_SCALE", "small"),
        "n_queries": N_QUERIES,
        "wall_seconds": wall,
        "queries_per_second": N_QUERIES / wall if wall > 0 else 0.0,
        "latency_p50_ms": stats["latency_p50_ms"],
        "latency_p95_ms": stats["latency_p95_ms"],
        "latency_p99_ms": p99_ms,
        "p99_budget_ms": P99_BUDGET_MS,
        "shed": stats["shed"],
        "predict_calls": stats["predict_calls"],
        "mean_batch_size": stats["mean_batch_size"],
        "model_loads": stats["model_loads"],
        "cache_hits": stats["cache_hits"],
        "load_waits": stats["load_waits"],
    }
    _merge_artifact(payload)
    record_property("artifact", os.path.abspath(ARTIFACT))


def _merge_artifact(payload: dict) -> None:
    """Update ``BENCH_serve.json`` in place: the burst cell and the fleet
    matrix run as separate tests but share one artifact."""
    existing: dict = {}
    if os.path.exists(ARTIFACT):
        try:
            with open(ARTIFACT) as fh:
                existing = json.load(fh)
        except ValueError:
            existing = {}
    existing.update(payload)
    with open(ARTIFACT, "w") as fh:
        json.dump(existing, fh, indent=2, sort_keys=True)


# -- fleet / featurization-cache matrix ------------------------------------------


def _whatif_traffic(hurricane):
    """(key, encoded-payload) what-if queries: every field probed at
    every published bound, repeated until N_QUERIES — the redundancy
    profile the featurization cache exists for (4 distinct fields under
    100 queries ≈ 96% payload repeat rate).

    Fields are tiled 2× per axis (512 KiB at small scale) so that
    featurization dominates per-query cost the way it does on the
    paper's production fields (500×500×100 ≈ 95 MB); each field is
    encoded once, as a real what-if driver sweeping one field would do.
    """
    scheme = get_scheme("rahman2023")
    keys = [
        registry_key(
            scheme.id,
            "sz3",
            {"pressio:abs": b, "pressio:abs_is_relative": True},
            scheme_params(scheme),
        )
        for b in WHATIF_BOUNDS
    ]
    fields = [
        encode_array(np.tile(hurricane.load_data(i).array, (2, 2, 2)))
        for i in range(WHATIF_FIELDS)
    ]
    queries = []
    i = 0
    while len(queries) < N_QUERIES:
        queries.append((keys[i % len(keys)], fields[(i // len(keys)) % len(fields)]))
        i += 1
    return queries


def _run_cell(addresses, queries, *, mid_run=None):
    """Fire *queries* over WHATIF_CLIENTS persistent connections.

    Returns (wall_seconds, failures).  ``mid_run()`` — the chaos hook —
    fires once from the driver thread after the first quarter completes.
    """
    shares = [queries[i::WHATIF_CLIENTS] for i in range(WHATIF_CLIENTS)]
    failures = [0] * WHATIF_CLIENTS
    done = [0] * WHATIF_CLIENTS
    barrier = threading.Barrier(WHATIF_CLIENTS + 1)

    def worker(i: int) -> None:
        address = addresses[i % len(addresses)]
        with PredictionClient(*address, reconnects=6) as client:
            barrier.wait()
            for key, arr in shares[i]:
                try:
                    response = client.predict(key, data=arr)
                    assert response["status"] == "ok"
                except Exception:
                    failures[i] += 1
                done[i] += 1

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(WHATIF_CLIENTS)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    if mid_run is not None:
        while sum(done) < len(queries) // 4:
            time.sleep(0.01)
        mid_run()
    for t in threads:
        t.join(120)
    wall = time.perf_counter() - t0
    return wall, sum(failures)


def _cell_stats(fleet, before):
    """Aggregate counters accrued since the *before* snapshot."""
    now = fleet.stats()["aggregate"]
    return {
        name: now.get(name, 0) - before.get(name, 0)
        for name in (
            "completed",
            "failed",
            "shed",
            "feat_hits",
            "feat_misses",
            "feat_bypass",
            "feat_ref_hits",
            "feat_ref_misses",
            "feat_bytes_saved",
            "featurize_seconds",
            "predict_seconds",
        )
    }, now


def _fleet_cell(registry_root, queries, *, workers, feat_cache, chaos=False):
    """One matrix cell: a fresh fleet, the full what-if burst, counters."""
    fleet = ServeFleet(
        registry_root,
        workers,
        feat_cache=feat_cache,
        server_options={
            "batch_window_ms": 2.0,
            "max_in_flight": 2 * N_QUERIES,
            "max_queue_depth": 4 * N_QUERIES,
        },
    )
    with fleet:
        addresses = fleet.data_addresses()
        baseline = fleet.stats()["aggregate"]
        runs = {}
        # Cold pass, then (cache cells only) a warm pass over the same
        # traffic: the warm pass is what a steady-state what-if service
        # sees, and is the headline QPS cell.
        passes = ("cold",) if feat_cache == "off" else ("cold", "warm")
        for label in passes:
            mid_run = None
            if chaos and label == "warm":
                def mid_run():
                    victims = sorted(fleet.worker_pids().values())
                    os.kill(victims[0], signal.SIGKILL)
                    fleet.refresh()
            wall, failures = _run_cell(addresses, queries, mid_run=mid_run)
            accrued, baseline = _cell_stats(fleet, baseline)
            runs[label] = {
                "wall_seconds": wall,
                "queries_per_second": len(queries) / wall if wall else 0.0,
                "failures": failures,
                **accrued,
            }
        if chaos:
            runs["restarts"] = sum(fleet.restart_counts().values())
            runs["crash_looped"] = fleet.crash_looped_workers()
    return runs


@pytest.mark.filterwarnings("ignore")
def test_fleet_whatif_matrix(registry, hurricane, record_property):
    queries = _whatif_traffic(hurricane)
    distinct = len({(k, id(a)) for k, a in queries})
    matrix = {
        "single_off": _fleet_cell(
            registry.root, queries, workers=1, feat_cache="off"
        ),
        "single_shared": _fleet_cell(
            registry.root, queries, workers=1, feat_cache="shared"
        ),
        "fleet_off": _fleet_cell(
            registry.root, queries, workers=FLEET_WORKERS, feat_cache="off"
        ),
        "fleet_shared": _fleet_cell(
            registry.root, queries, workers=FLEET_WORKERS, feat_cache="shared"
        ),
        "fleet_chaos": _fleet_cell(
            registry.root,
            queries,
            workers=FLEET_WORKERS,
            feat_cache="shared",
            chaos=True,
        ),
    }

    base = matrix["single_off"]["cold"]
    warm = matrix["fleet_shared"]["warm"]
    speedup = warm["queries_per_second"] / base["queries_per_second"]
    feat_reduction = 1.0 - (
        warm["featurize_seconds"] / base["featurize_seconds"]
        if base["featurize_seconds"]
        else 0.0
    )

    # The headline contracts.
    assert speedup >= QPS_SPEEDUP_FLOOR, (
        f"fleet-as-shipped is only {speedup:.2f}x the 1-worker cache-off "
        f"baseline (floor {QPS_SPEEDUP_FLOOR}x)"
    )
    assert feat_reduction >= FEAT_REDUCTION_FLOOR, (
        f"featurize-seconds reduction {feat_reduction:.1%} under "
        f"{FEAT_REDUCTION_FLOOR:.0%} on repeated-field what-if traffic"
    )
    # Zero failed queries in every cell — including the chaos cell's
    # worker kill + fleet-wide refresh mid-run.
    for name, cell in matrix.items():
        for label in ("cold", "warm"):
            if label in cell:
                assert cell[label]["failures"] == 0, f"{name}/{label} dropped queries"
                assert cell[label]["failed"] == 0
    assert matrix["fleet_chaos"]["restarts"] >= 1
    assert matrix["fleet_chaos"]["crash_looped"] == []
    # The warm shared cell actually served from the cache.
    assert warm["feat_hits"] == N_QUERIES
    assert warm["feat_misses"] == 0

    _merge_artifact(
        {
            "fleet": {
                "host_cores": os.cpu_count(),
                "workers": FLEET_WORKERS,
                "whatif_clients": WHATIF_CLIENTS,
                "whatif_distinct_payloads": distinct,
                "n_queries": N_QUERIES,
                "qps_speedup_vs_single_off": speedup,
                "qps_speedup_floor": QPS_SPEEDUP_FLOOR,
                "featurize_seconds_reduction": feat_reduction,
                "featurize_reduction_floor": FEAT_REDUCTION_FLOOR,
                "matrix": matrix,
            }
        }
    )
    record_property("artifact", os.path.abspath(ARTIFACT))
