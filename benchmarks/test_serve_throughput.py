"""Serving throughput: 100 concurrent queries against the prediction
server — the online-path counterpart of the queue-scaling benchmark.

Publishes the campaign's models into a registry, stands the server up on
a loopback socket, and fires ``N_QUERIES`` concurrent predicts released
by a barrier.  Asserts the serving contract under a provisioned burst
(admission limits sized for it): zero shed requests and a bounded p99
latency.  Emits ``BENCH_serve.json`` with the latency distribution and
micro-batching counters.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings

import pytest

from repro.predict.scheme import get_scheme
from repro.serve import (
    ModelRegistry,
    PredictionClient,
    PredictionServer,
    ServerThread,
    registry_key,
    scheme_params,
)

ARTIFACT = "BENCH_serve.json"
N_QUERIES = 100
#: Generous bound for CI boxes; interactive runs land far below it.
P99_BUDGET_MS = 1500.0
BOUND = 1e-4


@pytest.fixture(scope="module")
def registry(runner, observations, tmp_path_factory):
    reg = ModelRegistry(str(tmp_path_factory.mktemp("serve-registry")))
    with warnings.catch_warnings():
        # partial coverage (e.g. jin2022 on zfp) is expected, not news
        warnings.simplefilter("ignore")
        receipts = runner.publish(reg, observations)
    assert receipts, "campaign published no models"
    return reg


def test_serve_throughput_100_concurrent(registry, observations, record_property):
    scheme = get_scheme("rahman2023")
    key = registry_key(
        scheme.id,
        "sz3",
        {"pressio:abs": BOUND, "pressio:abs_is_relative": True},
        scheme_params(scheme),
    )
    rows = [
        dict(o)
        for o in observations
        if o.get("compressor") == "sz3"
        and float(o.get("bound", 0.0)) == BOUND
        and o.get("scheme:rahman2023:supported")
    ]
    assert rows, "campaign produced no usable feature rows"

    server = PredictionServer(
        registry,
        batch_window_ms=10.0,
        max_batch=64,
        max_in_flight=2 * N_QUERIES,
        max_queue_depth=4 * N_QUERIES,
    )
    responses: list = [None] * N_QUERIES
    barrier = threading.Barrier(N_QUERIES + 1)

    def worker(i: int) -> None:
        with PredictionClient(*thread.address) as client:
            barrier.wait()
            responses[i] = client.predict(key, results=rows[i % len(rows)])

    with ServerThread(server) as thread:
        with PredictionClient(*thread.address) as client:
            client.predict(key, results=rows[0])  # cold load outside the burst
        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(N_QUERIES)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join(60)
        wall = time.perf_counter() - t0
        with PredictionClient(*thread.address) as client:
            stats = client.stats()

    assert all(r is not None and r["status"] == "ok" for r in responses), (
        "a query failed or hung"
    )
    assert stats["shed"] == 0, f"provisioned burst shed {stats['shed']} request(s)"
    assert stats["completed"] == N_QUERIES + 1
    p99_ms = stats["latency_p99_ms"]
    assert p99_ms < P99_BUDGET_MS, f"p99 {p99_ms:.1f}ms over {P99_BUDGET_MS}ms budget"
    # micro-batching must engage under a 100-way burst
    assert stats["mean_batch_size"] > 1.0
    assert stats["predict_calls"] < N_QUERIES

    payload = {
        "scale": os.environ.get("REPRO_BENCH_SCALE", "small"),
        "n_queries": N_QUERIES,
        "wall_seconds": wall,
        "queries_per_second": N_QUERIES / wall if wall > 0 else 0.0,
        "latency_p50_ms": stats["latency_p50_ms"],
        "latency_p95_ms": stats["latency_p95_ms"],
        "latency_p99_ms": p99_ms,
        "p99_budget_ms": P99_BUDGET_MS,
        "shed": stats["shed"],
        "predict_calls": stats["predict_calls"],
        "mean_batch_size": stats["mean_batch_size"],
        "model_loads": stats["model_loads"],
        "cache_hits": stats["cache_hits"],
        "load_waits": stats["load_waits"],
    }
    with open(ARTIFACT, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    record_property("artifact", os.path.abspath(ARTIFACT))
