"""Data-plane benchmark: per-task handoff bytes and wall-clock for the
pickle / mmap / shm planes on the process engine.

The tentpole claim: routing a datum to its pinned worker and serving it
from a spill mapping or a shared-memory segment moves an order of
magnitude fewer *copied* bytes per task than re-materialising the array
for every task (the pickle baseline).  With ``D`` datums and ``T``
tasks the expected copied-byte totals are:

* ``pickle`` — every task pays a leaf load: ``T × nbytes``;
* ``mmap``   — one leaf load per datum, every other task page-faults the
  spill: ``D × nbytes`` copied, ``(T − D) × nbytes`` mapped;
* ``shm``    — one leaf load plus the one-time publish copy per datum:
  ``2 D × nbytes`` copied, the rest attached zero-copy.

So the ratio to beat is ``T / D`` (mmap) and ``T / 2D`` (shm); with the
task mix below (4 datums × 32 tasks) those are 32× and 16× — both past
the ≥ 10× acceptance bar with margin.

Emits ``BENCH_data_plane.json`` next to the working directory so CI can
archive the measured movement per plane.
"""

from __future__ import annotations

import functools
import json
import os
import time
from typing import Any

import numpy as np

from repro.bench import Task, TaskQueue
from repro.core.data import PressioData
from repro.dataset import LocalCache, SharedMemoryCache, SharedSegmentRegistry
from repro.dataset.base import DatasetPlugin

_SHAPE = (128, 256)  # 128 KiB per datum at float32
N_DATA = 4
PER_DATA = 32
N_WORKERS = 2
ARTIFACT = "BENCH_data_plane.json"


class _SyntheticDataset(DatasetPlugin):
    """Deterministic in-process leaf: every load materialises a fresh
    buffer, so leaf loads count as copies — exactly what a file read or
    HDF5 hyperslab would cost."""

    id = "synthetic"

    def __len__(self) -> int:
        return N_DATA

    def load_metadata(self, index: int) -> dict[str, Any]:
        return {"data_id": f"synthetic/{index}", "shape": _SHAPE, "dtype": "float32"}

    def load_data(self, index: int) -> PressioData:
        rng = np.random.default_rng(index)
        arr = rng.standard_normal(_SHAPE).astype(np.float32)
        return self._count_load(PressioData(arr, metadata=self.load_metadata(index)))


def make_tasks() -> list[Task]:
    tasks = []
    for d in range(N_DATA):
        for k in range(PER_DATA):
            tasks.append(
                Task(
                    data_index=d,
                    data_id=f"synthetic/{d}",
                    compressor_id="sz3",
                    compressor_options={"pressio:abs": (k + 1) * 1e-6},
                    dataset_config={"entry:data_id": f"synthetic/{d}"},
                    replicate=0,
                    nbytes=int(np.prod(_SHAPE)) * 4,
                )
            )
    return tasks


def _make_plane_task_fn(plane: str, plane_dir: str):
    """Per-worker factory (module-level so it pickles): builds the plane
    stack once per worker process, exactly as the runner's worker_init
    does."""
    ds: DatasetPlugin = _SyntheticDataset()
    if plane == "mmap":
        ds = LocalCache(ds, cache_dir=os.path.join(plane_dir, "spill"), mmap=True)
    elif plane == "shm":
        ds = SharedMemoryCache(
            ds, ledger_dir=os.path.join(plane_dir, "shm"), owner=False
        )

    def fn(task: Task, worker: int) -> dict[str, Any]:
        data = ds.load_data(task.data_index)
        return {"mean": float(np.asarray(data.array, dtype=np.float64).mean())}

    return fn


def _run_plane(plane: str, plane_dir: str) -> dict[str, Any]:
    tasks = make_tasks()
    queue = TaskQueue(N_WORKERS, "process", data_plane=plane)
    t0 = time.perf_counter()
    results, stats = queue.run(
        tasks,
        None,
        worker_init=functools.partial(_make_plane_task_fn, plane, plane_dir),
    )
    elapsed = time.perf_counter() - t0
    assert stats.failed == 0 and stats.completed == len(tasks)
    leaked: list[str] = []
    swept = 0
    if plane == "shm":
        # Campaign-owner sweep; a correct lifecycle leaves nothing live.
        owner = SharedSegmentRegistry(os.path.join(plane_dir, "shm"))
        swept = len(owner.unlink_all())
        leaked = list(owner.iter_live_segments())
    return {
        "plane": plane,
        "wall_s": round(elapsed, 4),
        "tasks": len(tasks),
        "bytes_copied": stats.bytes_copied,
        "bytes_mapped": stats.bytes_mapped,
        "copied_per_task": round(stats.bytes_copied / len(tasks), 1),
        "affinity_hit_rate": round(stats.affinity_hit_rate, 4),
        "affinity_steals": stats.affinity_steals,
        "segments_swept": swept,
        "leaked_segments": leaked,
    }


class TestDataPlaneMovement:
    def test_shm_and_mmap_copy_10x_less_than_pickle(self, tmp_path, record_property):
        rows = {
            plane: _run_plane(plane, str(tmp_path / plane))
            for plane in ("pickle", "mmap", "shm")
        }
        for plane, row in rows.items():
            record_property(plane, row)
        datum_bytes = int(np.prod(_SHAPE)) * 4
        report = {
            "shape": list(_SHAPE),
            "datum_bytes": datum_bytes,
            "n_data": N_DATA,
            "tasks": N_DATA * PER_DATA,
            "workers": N_WORKERS,
            "planes": rows,
            "copied_ratio_vs_pickle": {
                plane: round(
                    rows["pickle"]["bytes_copied"] / max(rows[plane]["bytes_copied"], 1),
                    2,
                )
                for plane in ("mmap", "shm")
            },
        }
        with open(ARTIFACT, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        record_property("artifact", os.path.abspath(ARTIFACT))

        # The pickle baseline re-copies the datum for every task.
        assert rows["pickle"]["bytes_copied"] >= N_DATA * PER_DATA * datum_bytes
        # Acceptance bar: ≥ 10× fewer copied bytes per task on both
        # zero-copy planes.
        assert report["copied_ratio_vs_pickle"]["mmap"] >= 10.0
        assert report["copied_ratio_vs_pickle"]["shm"] >= 10.0
        # The zero-copy planes actually served bytes by mapping.
        assert rows["mmap"]["bytes_mapped"] > 0
        assert rows["shm"]["bytes_mapped"] > 0
        # Pinned dispatch: with 4 datum groups on 2 workers the affinity
        # map serves ≥ 80% of tasks from their pinned worker.
        assert rows["shm"]["affinity_hit_rate"] >= 0.8
        # Lifecycle: nothing left in /dev/shm after the owner sweep.
        assert rows["shm"]["leaked_segments"] == []
