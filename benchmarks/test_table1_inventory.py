"""Table 1 completeness: all ten estimation methods under one protocol.

The paper's Table 1 catalogues ten methods but §5 ports only three.
This bench runs the complete inventory on the Hurricane campaign (sz3,
both bounds, grouped 10-fold CV for trained schemes) — the "more
systematic comparison" the paper's conclusion calls for, and the
shared-API payoff the infrastructure exists to deliver: every row below
costs one `get_scheme(...)` call.

Taxonomy checks are asserted from Table 1's columns: which methods
train, which sample, which are black-box, and which support which
compressors.
"""

import numpy as np
import pytest

from repro.bench import ExperimentRunner, format_table2
from repro.compressors import make_compressor
from repro.core import UnsupportedError
from repro.predict import available_schemes, get_scheme

TABLE1 = {
    # scheme id        (training, black_box)
    "tao2019": (False, None),  # "~" in the paper: block size from internals
    "krasowska2021": (True, True),
    "underwood2023": (True, True),
    "ganguli2023": (True, True),
    "jin2022": (False, False),
    "khan2023": (False, False),
    "rahman2023": (True, None),  # "~" in the paper
    "lu2018": (True, False),
    "qin2020": (True, False),
    "wang2023": (True, False),
}


def test_all_table1_methods_registered(benchmark):
    names = benchmark.pedantic(available_schemes, rounds=1, iterations=1)
    for scheme_id in TABLE1:
        assert scheme_id in names, f"Table 1 method {scheme_id} missing"
    benchmark.extra_info["registered"] = len(names)


def test_taxonomy_training_column(benchmark):
    def check():
        out = {}
        for scheme_id, (training, _bb) in TABLE1.items():
            scheme = get_scheme(scheme_id)
            assert scheme.needs_training == training, scheme_id
            out[scheme_id] = scheme.needs_training
        return out

    benchmark.pedantic(check, rounds=1, iterations=1)


def test_compressor_support_matrix(benchmark):
    """The N/A structure: jin/wang are SZ3-only; lu/qin are SZ/ZFP-era;
    the black-box methods support everything."""

    def check():
        sz3 = make_compressor("sz3", pressio__abs=1e-3)
        zfp = make_compressor("zfp", pressio__abs=1e-3)
        szx = make_compressor("szx", pressio__abs=1e-3)
        for scheme_id in ("jin2022", "wang2023"):
            get_scheme(scheme_id).get_predictor(sz3)
            with pytest.raises(UnsupportedError):
                get_scheme(scheme_id).get_predictor(zfp)
        for scheme_id in ("lu2018", "qin2020"):
            get_scheme(scheme_id).get_predictor(zfp)
            with pytest.raises(UnsupportedError):
                get_scheme(scheme_id).get_predictor(szx)
        for scheme_id in ("krasowska2021", "underwood2023", "ganguli2023", "rahman2023", "tao2019"):
            get_scheme(scheme_id).get_predictor(szx)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_full_inventory_on_hurricane(benchmark, hurricane, tmp_path_factory):
    """MedAPE for all ten methods on sz3, one table."""
    from repro.bench import CheckpointStore

    schemes = [s for s in TABLE1 if s != "wang2023"] + ["wang2023"]
    runner = ExperimentRunner(
        hurricane,
        compressors=("sz3",),
        bounds=(1e-6, 1e-4),
        schemes=schemes,
        store=CheckpointStore(
            str(tmp_path_factory.mktemp("table1") / "checkpoint.db")
        ),
        n_folds=10,
    )

    def run():
        obs, stats, _ = runner.collect()
        assert stats.failed == 0
        return runner.table2(obs)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table2(rows, title="All ten Table-1 methods on sz3 (Hurricane)"))
    by_method = {r.method: r for r in rows if r.method != "sz3"}
    assert len(by_method) == 10
    for method, row in by_method.items():
        assert row.supported, method
        assert np.isfinite(row.medape_pct), method
        benchmark.extra_info[f"{method}_medape"] = round(row.medape_pct, 2)
    # Every method must be a usable estimator on this protocol, and the
    # modern trained methods should sit at the accurate end.
    assert all(r.medape_pct < 300.0 for r in by_method.values())
    modern = min(by_method[m].medape_pct for m in ("rahman2023", "ganguli2023", "jin2022"))
    oldest = by_method["tao2019"].medape_pct
    assert modern <= oldest, "a decade of progress should show"
