"""Table 2 (MedAPE column): prediction quality under 10-fold grouped CV.

Paper values (MedAPE %, Hurricane, out-of-sample across fields):

    sz3 khan 232.57 | sz3 sian(jin) 25.88 | sz3 rahman 20.20
    zfp khan 381.12 | zfp sian  N/A       | zfp rahman 13.86

Expected shape (who wins, not absolute numbers): rahman (trained, with
the sparsity correction) is the most accurate on both compressors; jin
is the best non-training method and supports only SZ3; khan (pure
sampled stage surrogates) is the least accurate of the three on this
sparse/dense field mix.
"""

import math

import pytest

from repro.bench import format_table2

PAPER_MEDAPE = {
    ("khan2023", "sz3"): 232.57,
    ("jin2022", "sz3"): 25.88,
    ("rahman2023", "sz3"): 20.20,
    ("khan2023", "zfp"): 381.12,
    ("rahman2023", "zfp"): 13.86,
}


@pytest.fixture(scope="module")
def table2_rows(runner, observations, benchmark_fixture_holder=None):
    return runner.table2(observations)


def test_table2_evaluation(benchmark, runner, observations):
    """Benchmark the full evaluation phase and verify the quality shape."""
    rows = benchmark.pedantic(runner.table2, args=(observations,), rounds=1, iterations=1)
    by_key = {(r.method, r.compressor): r for r in rows}

    print()
    print(format_table2(rows, title=f"Table 2 reproduction ({len(observations)} observations)"))

    # -- the paper's quality ordering ---------------------------------------
    sz3_rahman = by_key[("rahman2023", "sz3")].medape_pct
    sz3_jin = by_key[("jin2022", "sz3")].medape_pct
    sz3_khan = by_key[("khan2023", "sz3")].medape_pct
    zfp_rahman = by_key[("rahman2023", "zfp")].medape_pct
    zfp_khan = by_key[("khan2023", "zfp")].medape_pct

    assert sz3_rahman < sz3_khan, "trained rahman must beat sampled khan on sz3"
    assert sz3_jin < sz3_khan, "full-data jin must beat sampled khan on sz3"
    assert zfp_rahman < zfp_khan, "trained rahman must beat sampled khan on zfp"
    # rahman and jin are the two accurate methods on sz3.  The paper has
    # rahman strictly first; on this substrate jin enjoys a structural
    # advantage (its analytic model was calibrated against this very
    # codec), so we assert they are in the same accuracy class rather
    # than a strict order — see EXPERIMENTS.md for the discussion.
    assert sz3_rahman <= sz3_jin * 2.0
    # jin on zfp is N/A (unsupported), exactly as in the paper.
    assert not by_key[("jin2022", "zfp")].supported
    assert math.isnan(by_key[("jin2022", "zfp")].medape_pct)

    for (method, comp), paper in PAPER_MEDAPE.items():
        measured = by_key[(method, comp)].medape_pct
        benchmark.extra_info[f"{comp}_{method}_medape"] = round(measured, 2)
        benchmark.extra_info[f"{comp}_{method}_paper"] = paper


def test_out_of_sample_harder_than_in_sample(benchmark, runner, observations):
    """§7 future work 1: in-sample prediction is the 'best-case scenario'.

    We run rahman2023 both ways: grouped folds (out-of-sample across
    fields, the paper's protocol) versus plain K-fold where timesteps of
    a field can appear in both train and validation.  In-sample must be
    at least as accurate.
    """
    import numpy as np

    from repro.compressors import make_compressor
    from repro.mlkit import KFold, medape
    from repro.predict import get_scheme

    scheme = get_scheme("rahman2023")
    comp = make_compressor("sz3", pressio__abs=1e-3)
    obs = [
        o for o in observations
        if o["compressor"] == "sz3" and o.get("scheme:rahman2023:supported")
    ]
    y = np.asarray([o["size:compression_ratio"] for o in obs])

    def in_sample_medape():
        oof = np.full(y.shape, np.nan)
        for train, val in KFold(min(10, len(obs)), random_state=0).split(len(obs)):
            predictor = scheme.get_predictor(comp)
            predictor.fit([obs[i] for i in train], y[train])
            oof[val] = predictor.predict_many([obs[i] for i in val])
        return medape(y, oof)

    in_sample = benchmark.pedantic(in_sample_medape, rounds=1, iterations=1)
    rows = {(r.method, r.compressor): r for r in runner.table2(observations)}
    out_sample = rows[("rahman2023", "sz3")].medape_pct
    benchmark.extra_info["in_sample_medape"] = round(in_sample, 2)
    benchmark.extra_info["out_of_sample_medape"] = round(out_sample, 2)
    assert in_sample <= out_sample * 1.1
