"""Cluster scale-out: TCP worker scaling, wire cost, and rank_kill chaos.

The paper's §4.3 harness exists to make large collection campaigns
practical; the cluster engine is its multi-node form.  This benchmark
measures the spawn-TCP deployment on one host — the same code path a
SLURM-launched campaign runs, minus the network:

* **strong scaling** — one latency-bound campaign at 1, 2, and 4 worker
  ranks.  Spawned ranks pay real process startup, so the floor asserted
  is modest (4 ranks beat 1); the interesting number is the curve in the
  artifact;
* **wire bytes per task** — payloads stay in the rank shards, so the
  control-plane cost per task must be flat and small (bounded here at
  64 KiB/task, two orders below the payloads themselves);
* **rank_kill chaos** — a campaign where worker ranks are abruptly
  killed (``os._exit``, no flush, no ack) mid-batch must still complete
  every task after requeue + respawn, and the merged store must verify
  clean: the zero-lost-tasks guarantee.

Emits ``BENCH_cluster.json``.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench import CheckpointStore, Task, TaskQueue
from repro.bench.cluster import ClusterSpec
from repro.bench.faults import ChaosPlan

ARTIFACT = "BENCH_cluster.json"

#: Simulated data-load latency per task: large enough that rank
#: parallelism (not scheduling overhead) decides the wall time.
LOAD_SECONDS = 0.08
N_DATA = 8
PER_DATA = 8
#: The chaos cell runs fewer tasks: every planned kill costs a real
#: process respawn, and the cell's point is zero loss, not throughput.
CHAOS_PER_DATA = 4
WORKER_COUNTS = (1, 2, 4)


def make_tasks(n_data: int = N_DATA, per_data: int = PER_DATA) -> list[Task]:
    tasks = []
    for d in range(n_data):
        for k in range(per_data):
            tasks.append(
                Task(
                    data_index=d,
                    data_id=f"data/{d}",
                    compressor_id="sz3",
                    compressor_options={"pressio:abs": 10.0 ** -(k + 2)},
                    dataset_config={"entry:data_id": f"data/{d}"},
                    replicate=0,
                    nbytes=1 << 20,
                )
            )
    return tasks


def simulated_collection_task(task: Task, worker: int) -> dict:
    """Latency-bound collection stand-in (module-level so it pickles)."""
    time.sleep(LOAD_SECONDS)
    return {"data_id": task.data_id, "worker": worker}


def _run_cell(n_workers: int, tmp_path, chaos=None, max_pool_rebuilds: int = 16,
              per_data: int = PER_DATA):
    spec = ClusterSpec(shard_dir=str(tmp_path / f"shards-{n_workers}"))
    queue = TaskQueue(n_workers, "cluster", cluster=spec,
                      max_pool_rebuilds=max_pool_rebuilds)
    store = CheckpointStore(str(tmp_path / f"merged-{n_workers}.db"))
    tasks = make_tasks(per_data=per_data)
    t0 = time.perf_counter()
    results, stats = queue.run(
        tasks, simulated_collection_task, chaos=chaos, merge_store=store
    )
    elapsed = time.perf_counter() - t0
    assert stats.failed == 0, [r.error for r in results if not r.ok][:3]
    assert stats.completed == len(tasks)
    assert sorted(store.keys()) == sorted(t.key() for t in tasks)
    assert store.verify() == []
    store.close()
    return elapsed, stats


class TestClusterScaleout:
    def test_tcp_scaling_and_rank_kill_chaos(self, tmp_path, record_property):
        report: dict = {
            "scale": os.environ.get("REPRO_BENCH_SCALE", "small"),
            "tasks": N_DATA * PER_DATA,
            "load_seconds_per_task": LOAD_SECONDS,
            "scaling": [],
        }

        timings: dict[int, float] = {}
        for n in WORKER_COUNTS:
            elapsed, stats = _run_cell(n, tmp_path)
            cs = stats.cluster_summary()
            timings[n] = elapsed
            report["scaling"].append(
                {
                    "workers": n,
                    "seconds": round(elapsed, 4),
                    "speedup_vs_1": round(timings[WORKER_COUNTS[0]] / elapsed, 3),
                    "shards_merged": cs["shards_merged"],
                    "wire_bytes_per_task": round(cs["wire_bytes_per_task"], 1),
                    "rank_deaths": cs["rank_deaths"],
                }
            )
            record_property(f"cluster_{n}w_s", round(elapsed, 4))
            # Payloads ride the shards, not the ack channel: the control
            # plane must stay flat and cheap per task.
            assert cs["wire_bytes_per_task"] < 64 * 1024, cs
            assert cs["shards_merged"] == n

        assert timings[4] < timings[1], (
            f"4 ranks ({timings[4]:.2f}s) must beat 1 rank ({timings[1]:.2f}s) "
            f"on a {N_DATA * PER_DATA}x{LOAD_SECONDS:.0e}s latency-bound campaign"
        )

        # Chaos cell: kill the hosting rank of ~25% of tasks, first
        # attempt each.  Zero lost tasks after requeue + merge is the
        # acceptance criterion, not a statistical outcome.
        chaos = ChaosPlan(
            rank_kill_rate=0.25, seed=13, state_dir=str(tmp_path / "chaos")
        )
        elapsed, stats = _run_cell(
            4, tmp_path / "chaos-cell", chaos=chaos, per_data=CHAOS_PER_DATA
        )
        cs = stats.cluster_summary()
        assert stats.rank_deaths >= 1, "chaos cell must actually kill ranks"
        report["rank_kill_chaos"] = {
            "workers": 4,
            "seconds": round(elapsed, 4),
            "rank_deaths": cs["rank_deaths"],
            "rank_restarts": cs["rank_restarts"],
            "tasks_completed": stats.completed,
            "tasks_lost": N_DATA * CHAOS_PER_DATA - stats.completed,
            "merge_replaced": cs["merge_replaced"],
            "merge_quarantined": cs["merge_quarantined"],
        }
        record_property("chaos_rank_deaths", cs["rank_deaths"])
        assert report["rank_kill_chaos"]["tasks_lost"] == 0

        with open(ARTIFACT, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        record_property("artifact", os.path.abspath(ARTIFACT))
