"""Figure 2 ablation: the dataset pipeline's cache tiers and the
locality-aware scheduler.

§4.1 motivates multi-tier caching ("deep memory tiers on modern
supercomputers") and §4.3 locality placement ("schedule as many jobs
with the same data to the same workers").  These benches measure both:
cold vs. warm loads through the disk/RAM tiers, and the virtual-cluster
makespan with and without locality awareness.
"""

import pytest

from repro.bench import SimulatedCluster
from repro.dataset import HurricaneDataset, LocalCache, MemoryCache


@pytest.fixture(scope="module")
def file_backed(tmp_path_factory):
    """Hurricane materialised to .npy files (a real I/O bottom tier)."""
    from repro.dataset import FolderLoader

    root = tmp_path_factory.mktemp("hurricane_files")
    ds = HurricaneDataset(shape=(32, 32, 16), timesteps=[0, 1], fields=["P", "U", "QRAIN"])
    ds.write_to_directory(str(root))
    return FolderLoader(str(root), "*.npy")


def test_cold_loads(benchmark, file_backed):
    def cold():
        for i in range(len(file_backed)):
            file_backed.load_data(i)

    benchmark(cold)


def test_warm_memory_cache(benchmark, file_backed):
    cache = MemoryCache(file_backed, capacity_bytes=1 << 28)
    for i in range(len(cache)):
        cache.load_data(i)  # prime

    def warm():
        for i in range(len(cache)):
            cache.load_data(i)

    benchmark(warm)
    assert cache.hits > 0


def test_warm_disk_cache(benchmark, tmp_path_factory, file_backed):
    cache = LocalCache(file_backed, cache_dir=str(tmp_path_factory.mktemp("spill")))
    for i in range(len(cache)):
        cache.load_data(i)  # prime the spill

    def warm():
        for i in range(len(cache)):
            cache.load_data(i)

    benchmark(warm)
    assert cache.hits >= len(cache)


def test_generation_vs_cached_load(benchmark, tmp_path_factory):
    """Stacked tiers beat regenerating/re-reading every access."""
    import time

    ds = HurricaneDataset(shape=(32, 32, 16), timesteps=[0], fields=["P", "U", "W"])
    stack = MemoryCache(
        LocalCache(ds, cache_dir=str(tmp_path_factory.mktemp("spill2"))),
        capacity_bytes=1 << 28,
    )

    def measure():
        t0 = time.perf_counter()
        for i in range(len(ds)):
            ds.load_data(i)
        raw_s = time.perf_counter() - t0
        for i in range(len(stack)):
            stack.load_data(i)  # prime
        t0 = time.perf_counter()
        for i in range(len(stack)):
            stack.load_data(i)
        warm_s = time.perf_counter() - t0
        return raw_s, warm_s

    raw_s, warm_s = benchmark.pedantic(measure, rounds=3, iterations=1)
    assert warm_s < raw_s
    benchmark.extra_info["speedup"] = round(raw_s / max(warm_s, 1e-9), 1)


def test_locality_scheduling_makespan(benchmark, runner):
    """Virtual cluster: locality-aware vs naive placement (4 nodes)."""
    tasks = runner.build_tasks()
    cost = lambda t: 0.02  # noqa: E731 - constant compute model

    def measure():
        aware = SimulatedCluster(4, locality_aware=True).run(list(tasks), cost)
        naive = SimulatedCluster(4, locality_aware=False).run(list(tasks), cost)
        return aware, naive

    aware, naive = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert aware.total_load_seconds <= naive.total_load_seconds
    benchmark.extra_info["aware_makespan_s"] = round(aware.makespan, 3)
    benchmark.extra_info["naive_makespan_s"] = round(naive.makespan, 3)
    benchmark.extra_info["aware_cache_hits"] = aware.cache_hits
    benchmark.extra_info["naive_cache_hits"] = naive.cache_hits


def test_strong_scaling_curve(benchmark, runner):
    """Virtual strong scaling 1..16 nodes (the paper's 'at scale' claim)."""
    tasks = runner.build_tasks()
    cost = lambda t: 0.02  # noqa: E731

    def measure():
        return {
            n: SimulatedCluster(n).run(list(tasks), cost).makespan
            for n in (1, 2, 4, 8, 16)
        }

    curve = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert curve[16] < curve[1] / 8, curve  # at least 8x from 16 nodes
    for n, makespan in curve.items():
        benchmark.extra_info[f"makespan_{n}_nodes"] = round(makespan, 3)
