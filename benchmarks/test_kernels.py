"""Kernel benchmark: the vectorized LZ77/Huffman hot path vs the
interpreted reference loops, plus per-stage compressor timings.

The collection wall-clock path of every campaign runs through the
encoding kernels, so their speed is tracked like the data-plane and
serve benchmarks.  Three sections land in ``BENCH_kernels.json``:

* ``lz77`` — the hash-chain encoder and list-ranking decoder against
  the byte-at-a-time reference implementations on a 1 MiB payload of
  production content (a Huffman-coded quantizer-residual stream — the
  exact bytes the final lossless pass sees inside sz3/sperr).  The
  acceptance bar is a >= 5x combined encode+decode wall-clock win, with
  byte-identical streams.  Two shape-contrast payloads (periodic,
  motif-tiled) are reported alongside for decode-side visibility.
* ``huffman_tables`` — the two-``np.repeat`` canonical-table build
  against the per-symbol scatter loop it replaced.
* ``stage_times`` — per-kernel wall-clock (quantize / predict /
  huffman / lossless, etc.) for each compressor via the
  ``stage_times`` introspection hooks, so a regression in any single
  kernel is visible in isolation.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.encoding import huffman
from repro.encoding.lz import (
    _lz77_compress,
    _lz77_compress_ref,
    _lz77_decompress,
    _lz77_decompress_ref,
)

ARTIFACT = "BENCH_kernels.json"
PAYLOAD_SIZE = 1 << 20
SPEEDUP_BAR = 5.0


def _best(fn, *args, reps: int = 3) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _production_payload(size: int = PAYLOAD_SIZE) -> bytes:
    """Huffman-coded Gaussian quantizer residuals, truncated to *size*.

    This is the content the lz77 stage compresses in production: sz3 and
    sperr hand their Huffman stream to ``lossless_compress``, so the
    kernel benchmark measures the encoder on exactly that byte
    distribution (high entropy, sparse 4-byte repeats).
    """
    rng = np.random.default_rng(21)
    sym = np.clip(np.round(rng.standard_normal(2_500_000) * 3.0), -60, 60).astype(
        np.int64
    )
    stream = huffman.encode(sym)
    assert len(stream) >= size
    return stream[:size]


def _contrast_payloads() -> dict[str, bytes]:
    rng = np.random.default_rng(22)
    motif = rng.integers(0, 40, 2048, dtype=np.int64).astype(np.uint8).tobytes()
    return {
        "periodic": b"abcdab" * (PAYLOAD_SIZE // 6),
        "motif_tiled": motif * (PAYLOAD_SIZE // len(motif)),
    }


def _bench_lz77(payload: bytes, reps: int = 3) -> dict:
    t_enc_ref, stream_ref = _best(_lz77_compress_ref, payload, reps=reps)
    t_enc_new, stream_new = _best(_lz77_compress, payload, reps=reps)
    assert stream_ref == stream_new, "vectorized encoder is not bit-exact"
    t_dec_ref, out_ref = _best(_lz77_decompress_ref, stream_new, len(payload), reps=reps)
    t_dec_new, out_new = _best(_lz77_decompress, stream_new, len(payload), reps=reps)
    assert out_ref == out_new == payload, "decode round-trip failed"
    return {
        "payload_bytes": len(payload),
        "stream_bytes": len(stream_new),
        "encode_ref_s": round(t_enc_ref, 4),
        "encode_vec_s": round(t_enc_new, 4),
        "encode_speedup": round(t_enc_ref / t_enc_new, 2),
        "decode_ref_s": round(t_dec_ref, 4),
        "decode_vec_s": round(t_dec_new, 4),
        "decode_speedup": round(t_dec_ref / t_dec_new, 2),
        "combined_speedup": round((t_enc_ref + t_dec_ref) / (t_enc_new + t_dec_new), 2),
    }


def _reference_table_build(code: huffman.HuffmanCode) -> tuple[np.ndarray, np.ndarray]:
    """The retired per-symbol scatter loop (baseline for the bench)."""
    width = max(code.max_length, 1)
    size = 1 << width
    sym_table = np.zeros(size, dtype=np.int64)
    len_table = np.zeros(size, dtype=np.int64)
    for i in range(code.symbols.size):
        l = int(code.lengths[i])
        if l == 0:
            continue
        b = int(code.codes[i]) << (width - l)
        s = 1 << (width - l)
        sym_table[b : b + s] = i
        len_table[b : b + s] = l
    return sym_table, len_table


class TestKernelSpeed:
    def test_kernels_meet_speed_bar(self, record_property):
        report: dict = {}

        # -- lz77: production payload carries the acceptance bar --------
        lz = {"production_hstream": _bench_lz77(_production_payload())}
        for name, payload in _contrast_payloads().items():
            lz[name] = _bench_lz77(payload)
        report["lz77"] = lz
        record_property("lz77", lz)

        # -- canonical table build --------------------------------------
        rng = np.random.default_rng(7)
        sym = np.clip(rng.zipf(1.3, 200_000), 1, 5000).astype(np.int64)
        code = huffman.build_code(sym)
        t_ref, tables_ref = _best(_reference_table_build, code)
        t_vec, tables_vec = _best(code.decode_tables)
        assert np.array_equal(tables_ref[0], tables_vec[0])
        assert np.array_equal(tables_ref[1], tables_vec[1])
        report["huffman_tables"] = {
            "symbols": int(code.symbols.size),
            "table_width_bits": code.max_length,
            "build_ref_s": round(t_ref, 5),
            "build_vec_s": round(t_vec, 5),
            "build_speedup": round(t_ref / t_vec, 2),
        }
        record_property("huffman_tables", report["huffman_tables"])

        # -- per-stage compressor timings -------------------------------
        from repro.core.compressor import compressor_registry
        import repro.compressors  # noqa: F401

        axes = [np.linspace(0.0, 2.0 * np.pi, s) for s in (64, 64, 32)]
        zz, yy, xx = np.meshgrid(*axes, indexing="ij")
        field = np.sin(3.0 * xx) * np.cos(2.0 * yy) + 0.5 * np.sin(zz)
        field += 0.02 * rng.standard_normal(field.shape)
        stage_rows = {}
        for comp_id, options in (
            ("sz3", {"pressio:abs": 1e-3}),
            ("sz3", {"pressio:abs": 1e-3, "sz3:predictor": "interp"}),
            ("zfp", {"pressio:abs": 1e-3}),
            ("szx", {"pressio:abs": 1e-3}),
            ("sperr", {"pressio:abs": 1e-3}),
        ):
            comp = compressor_registry.create(comp_id)
            comp.set_options(options)
            label = comp_id + ("_interp" if options.get("sz3:predictor") else "")
            stage_rows[label] = {
                k: round(v, 5) for k, v in comp.stage_times(field).items()
            }
        report["stage_times"] = stage_rows
        record_property("stage_times", stage_rows)

        with open(ARTIFACT, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        record_property("artifact", os.path.abspath(ARTIFACT))

        # Acceptance bar: >= 5x combined encode+decode wall-clock on the
        # 1 MiB production payload, and the table build must not regress.
        assert lz["production_hstream"]["combined_speedup"] >= SPEEDUP_BAR
        assert lz["production_hstream"]["encode_speedup"] >= SPEEDUP_BAR
        assert report["huffman_tables"]["build_speedup"] >= 1.0
        for label, row in stage_rows.items():
            assert row["total"] > 0.0, label
