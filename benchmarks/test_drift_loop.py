"""The ISSUE's headline acceptance run: ten consecutive drift-triggered
rollovers against a live server, chaos-proofed end to end.

A tiny campaign seeds v0001 into a registry, a :class:`PredictionServer`
serves it, and a background thread keeps querying it with the default
(retrying) client for the whole session.  Each round the drift monitor
is driven to fire with skewed ground truth, then a
:class:`ContinuousLearner` rollover runs under deterministic chaos —
``trainer_kill:1.0`` (the trainer dies at collect and at every one of
the four journaled publish fault points) plus ``publish_corrupt:1.0``
(every freshly committed blob is damaged at rest, forcing a quarantine
and republish).  The contract:

* zero failed client queries across all ten rollovers,
* the server observably flips to a strictly newer version each round
  with zero restarts,
* the registry's ``verify()`` is clean at the end, and
* every monitor is re-armed (not stale) after its rollover.

Emits ``BENCH_drift_loop.json`` with per-round rollover latency and the
queries served *during* each rollover window.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.bench import ChaosPlan, CheckpointStore, ExperimentRunner, RetryPolicy, TaskQueue
from repro.dataset import HurricaneDataset
from repro.predict.scheme import get_scheme
from repro.serve import (
    ContinuousLearner,
    DriftConfig,
    ModelRegistry,
    PredictionClient,
    PredictionServer,
    ServerThread,
)

ARTIFACT = "BENCH_drift_loop.json"
ROUNDS = 10
#: Per round under rate-1.0 chaos: one kill at collect + one at each of
#: the four publish fault points, then one at-rest corruption -> the
#: corrupted vN+1 is quarantined at verify and republished as vN+2.
KILLS_PER_ROUND = 5
FAST_DRIFT = DriftConfig(window=8, min_observations=4, calibration=4, hysteresis=2)


def _runner_factory(store: CheckpointStore):
    def factory(round_no: int) -> ExperimentRunner:
        dataset = HurricaneDataset(
            shape=(8, 8, 4), timesteps=2 + round_no, fields=["P"]
        )
        return ExperimentRunner(
            dataset,
            compressors=["sz3"],
            bounds=[1e-3],
            schemes=[
                get_scheme(
                    "rahman2023", n_estimators=3, max_depth=3, augment_factor=1.0
                )
            ],
            store=store,
            queue=TaskQueue(1, "serial"),
            n_folds=2,
        )

    return factory


def _force_drift(client: PredictionClient, key: str, row: dict, cap: int = 80) -> int:
    """Feed skewed ground truth until the monitor fires; return # observations."""
    resp = client.predict(key, results=row)
    for i in range(1, cap + 1):
        snap = client.observe(
            key,
            resp["prediction"],
            resp["prediction"] * 3.0,
            version=resp["version"],
        )
        if snap["fired"]:
            return i
    raise AssertionError(f"drift monitor did not fire within {cap} observations")


def test_ten_chaos_rollovers_zero_failed_queries(tmp_path, record_property):
    store = CheckpointStore(str(tmp_path / "ck.db"))
    registry = ModelRegistry(str(tmp_path / "reg"))
    factory = _runner_factory(store)

    seed_runner = factory(0)
    observations = seed_runner.collect().observations
    receipts = seed_runner.publish(registry, observations, verify_n=2)
    seed_runner.close()
    assert len(receipts) == 1
    key = receipts[0].key
    row = dict(observations[0])
    assert registry.latest(key) == "v0001"

    chaos = ChaosPlan.from_spec(
        "trainer_kill:1.0,publish_corrupt:1.0",
        seed=11,
        state_dir=str(tmp_path / "chaos-state"),
    )
    server = PredictionServer(registry, drift_config=FAST_DRIFT)
    queries = [0]
    failures: list[str] = []
    stop = threading.Event()

    rounds: list[dict] = []
    t_session = time.perf_counter()
    with ServerThread(server) as thread:
        host, port = thread.address
        learner = ContinuousLearner(
            registry,
            factory,
            servers=[(host, port)],
            retry_policy=RetryPolicy(max_retries=32, base_delay=0.0, seed=0),
            max_stage_attempts=32,
            chaos=chaos,
            verify_n=2,
        )

        def traffic() -> None:
            # The default client retries through overload; any error that
            # reaches us is a genuinely failed query.
            with PredictionClient(host, port) as tclient:
                while not stop.is_set():
                    try:
                        resp = tclient.predict(key, results=row)
                        assert resp["status"] == "ok"
                        queries[0] += 1
                    except Exception as exc:  # noqa: BLE001 - the count IS the assert
                        failures.append(repr(exc))
                    time.sleep(0.001)

        pump = threading.Thread(target=traffic, daemon=True)
        pump.start()
        try:
            with PredictionClient(host, port) as client:
                for round_no in range(1, ROUNDS + 1):
                    before = registry.latest(key)
                    obs_to_fire = _force_drift(client, key, row)
                    assert key in learner.fired_keys()
                    served_before = queries[0]
                    t0 = time.perf_counter()
                    report = learner.rollover(round_no)
                    latency = time.perf_counter() - t0
                    after = registry.latest(key)
                    # the flip is observable on the SAME server thread:
                    # zero restarts, strictly newer version
                    assert after == report.published[key]
                    assert int(after[1:]) > int(before[1:])
                    assert client.predict(key, results=row)["version"] == after
                    # the monitor re-armed for the new version: not stale
                    assert learner.fired_keys() == {}
                    rounds.append(
                        {
                            "round": round_no,
                            "version": after,
                            "attempts": report.attempts,
                            "rollover_seconds": round(latency, 4),
                            "queries_during_rollover": queries[0] - served_before,
                            "observations_to_fire": obs_to_fire,
                        }
                    )
        finally:
            stop.set()
            pump.join(30)
    wall = time.perf_counter() - t_session
    store.close()

    assert len(rounds) == ROUNDS
    assert failures == [], f"{len(failures)} client queries failed: {failures[:3]}"
    assert queries[0] > 0
    # chaos really ran at full rate, every round
    injected = chaos.injected_counts()
    assert injected["trainer_kill"] == KILLS_PER_ROUND * ROUNDS
    assert injected["publish_corrupt"] == ROUNDS
    # every rollover had to fight through the kills before converging
    assert all(r["attempts"] > KILLS_PER_ROUND for r in rounds)
    # the registry healed completely: no torn state, no stray quarantine debris
    assert registry.verify() == []
    served = queries[0]
    during = sum(r["queries_during_rollover"] for r in rounds)
    assert during > 0, "traffic stalled during every rollover"

    latencies = sorted(r["rollover_seconds"] for r in rounds)
    payload = {
        "scale": os.environ.get("REPRO_BENCH_SCALE", "small"),
        "rounds": rounds,
        "n_rounds": ROUNDS,
        "chaos_spec": "trainer_kill:1.0,publish_corrupt:1.0",
        "injected": injected,
        "queries_total": served,
        "queries_failed": len(failures),
        "queries_during_rollovers": during,
        "queries_per_second": round(served / wall, 2) if wall > 0 else 0.0,
        "rollover_seconds_min": latencies[0],
        "rollover_seconds_median": latencies[ROUNDS // 2],
        "rollover_seconds_max": latencies[-1],
        "wall_seconds": round(wall, 3),
        "final_version": rounds[-1]["version"],
    }
    with open(ARTIFACT, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    record_property("artifact", os.path.abspath(ARTIFACT))
