"""§6 narrative: amortising the SVD's error-agnostic cost.

"Other works that use training such as [Underwood 2023] are competitive
in terms of their error-dependent metrics with less than 43ms.  However,
this work requires the computation of the SVD truncation which takes
closer to 771ms making it suitable for cases where multiple compression
operations are performed on the same data."

Expected shape: the SVD stage costs an order of magnitude more than the
error-dependent stage, and with the invalidation-aware evaluator its
cost is paid once per dataset, so a sweep over K bounds approaches the
cost of K error-dependent evaluations.
"""

import time

import pytest

from repro.compressors import make_compressor
from repro.core import PressioData
from repro.predict import get_scheme
from repro.predict.metrics import QuantizedEntropyMetric, SVDTruncationMetric


def _eb(data) -> float:
    arr = data.array
    return 1e-4 * float(arr.max() - arr.min())


def test_svd_stage_cost(benchmark, pressure_field):
    metric = SVDTruncationMetric()
    opts = make_compressor("sz3", pressio__abs=_eb(pressure_field)).get_options()

    def run():
        metric.reset()
        metric.begin_compress_impl(pressure_field, opts)
        return metric.get_metrics_results()

    result = benchmark(run)
    benchmark.extra_info["truncation_rank"] = result["svd:truncation_rank"]
    benchmark.extra_info["paper_ms"] = 771.0


def test_error_dependent_stage_cost(benchmark, pressure_field):
    metric = QuantizedEntropyMetric()
    opts = make_compressor("sz3", pressio__abs=_eb(pressure_field)).get_options()

    def run():
        metric.reset()
        metric.begin_compress_impl(pressure_field, opts)
        return metric.get_metrics_results()

    benchmark(run)
    benchmark.extra_info["paper_ms"] = 43.0


def test_svd_dominates_error_dependent(benchmark, pressure_field):
    """The cost asymmetry that motivates amortisation."""
    opts = make_compressor("sz3", pressio__abs=_eb(pressure_field)).get_options()

    def measure():
        svd = SVDTruncationMetric()
        qent = QuantizedEntropyMetric()
        t0 = time.perf_counter()
        svd.begin_compress_impl(pressure_field, opts)
        svd_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        qent.begin_compress_impl(pressure_field, opts)
        qent_s = time.perf_counter() - t0
        return svd_s, qent_s

    svd_s, qent_s = benchmark.pedantic(measure, rounds=3, iterations=1)
    assert svd_s > qent_s, "SVD must be the expensive stage"
    benchmark.extra_info["ratio"] = svd_s / qent_s
    benchmark.extra_info["paper_ratio"] = 771.0 / 43.0


def test_amortized_sweep(benchmark, pressure_field):
    """Underwood scheme over K bounds: the SVD is computed once and the
    remaining sweep steps only pay the error-dependent metric."""
    bounds = [10.0 ** e for e in (-6, -5, -4, -3, -2)]
    arr = pressure_field.array
    vrange = float(arr.max() - arr.min())
    scheme = get_scheme("underwood2023")

    def sweep():
        comp = make_compressor("sz3", pressio__abs=bounds[0] * vrange)
        evaluator = scheme.req_metrics_opts(comp)
        evaluator.evaluate(pressure_field)  # pays the SVD once
        for eb in bounds[1:]:
            evaluator.set_options({"pressio:abs": eb * vrange})
            evaluator.evaluate(pressure_field, changed=["pressio:abs"])
        return evaluator

    evaluator = benchmark(sweep)
    stats = evaluator.stats()
    # The SVD ran once; the quantized entropy ran once per bound.
    assert stats["reused"] >= len(bounds) - 1
    benchmark.extra_info["reused_metric_evaluations"] = stats["reused"]
    benchmark.extra_info["svd_seconds_total"] = round(
        stats.get("seconds_error_agnostic", 0.0), 4
    )
