"""§4.3 ablation: checkpoint/restart and stable option hashing.

"Fine-grained checkpoint restart allows us to re-run only the affected
results quickly" — these benches measure (1) the cost of the stable
cryptographic hash that keys the checkpoint, (2) upfront key
precomputation for a full campaign, (3) a faulty run followed by a
restart that replays only the poisoned tasks.
"""

import os

import pytest

from repro.bench import (
    CheckpointStore,
    ExperimentRunner,
    FaultInjector,
    TaskQueue,
)
from repro.bench.tasks import precompute_keys
from repro.core import options_hash
from repro.dataset import HurricaneDataset


def test_options_hash_throughput(benchmark):
    opts = {
        "pressio:abs": 1e-4,
        "pressio:id": "sz3",
        "sz3:predictor": "lorenzo",
        "sz3:lossless": "zlib",
        "sz3:huffman_max_length": 16,
        "hurricane:fields": ["P", "U", "V", "W", "TC"],
        "hurricane:shape": [48, 48, 24],
    }
    digest = benchmark(options_hash, opts)
    assert len(digest) == 64


def test_campaign_key_precompute(benchmark, runner):
    """Hash every task key once upfront (the paper computes hashes
    'once upfront before execution begins')."""
    tasks = runner.build_tasks()

    def precompute():
        for t in tasks:
            t._key = None  # force re-hash
        return precompute_keys(tasks)

    mapping = benchmark(precompute)
    assert len(mapping) == len(tasks)
    benchmark.extra_info["n_tasks"] = len(tasks)


@pytest.fixture()
def small_runner(tmp_path):
    ds = HurricaneDataset(shape=(16, 16, 8), timesteps=[0, 24], fields=["P", "U", "QRAIN", "W"])
    store = CheckpointStore(os.path.join(str(tmp_path), "restart.db"))
    return ExperimentRunner(
        ds,
        compressors=("szx",),
        bounds=(1e-4,),
        schemes=("tao2019",),
        store=store,
        queue=TaskQueue(1, "serial", max_retries=1),
    )


def test_restart_replays_only_missing(benchmark, small_runner):
    """Poison a third of the first run, then benchmark the restart."""
    import warnings

    tasks = small_runner.build_tasks()
    poison = {t.key() for i, t in enumerate(tasks) if i % 3 == 0}
    faulty = FaultInjector(small_runner.run_task, poison_keys=poison)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        _, stats1, _ = small_runner.collect(task_fn=faulty)
    assert stats1.failed == len(poison)

    executed = []

    def counting(task, worker):
        executed.append(task.key())
        return small_runner.run_task(task, worker)

    def restart():
        executed.clear()
        obs, stats, _ = small_runner.collect(task_fn=counting)
        return obs, stats

    obs, stats2 = benchmark.pedantic(restart, rounds=1, iterations=1)
    # Only the previously-poisoned keys re-ran (the first restart rounds
    # fill them in; later measured rounds re-run nothing).
    assert set(executed) <= poison
    assert stats2.failed == 0
    assert len(obs) == len(tasks)
    benchmark.extra_info["replayed"] = len(executed)
    benchmark.extra_info["total_tasks"] = len(tasks)


def test_checkpoint_write_read_cost(benchmark, tmp_path):
    """Per-result checkpoint round-trip cost (JSON + SQLite commit)."""
    store = CheckpointStore(os.path.join(str(tmp_path), "io.db"))
    payload = {f"metric:{i}": float(i) * 1.5 for i in range(40)}
    counter = [0]

    def roundtrip():
        key = f"key-{counter[0]}"
        counter[0] += 1
        store.put(key, payload, compressor_hash="c", dataset_hash="d")
        return store.get(key)

    out = benchmark(roundtrip)
    assert out["metric:1"] == 1.5
