"""Extended coverage: all five codecs and the non-weather datasets.

The paper limits its evaluation to SZ3/ZFP on Hurricane "due to time
constraints" (§5) and lists broader dataset coverage as future work 2.
These benches extend both axes on our substrate:

1. every codec (sz3, zfp, szx, sperr) under the khan2023 and tao2019
   untrained schemes — SECRE's own paper targets SZx and SPERR;
2. the SZ3 predictor-stage ablation (none/lorenzo/lorenzo2/interp) —
   both the CR effect and the ZPerf counterfactual's raw material;
3. cross-dataset evaluation: rahman2023 trained on Hurricane applied to
   CESM/Nyx/S3D/turbulence, versus trained in-domain.
"""

import numpy as np
import pytest

from repro.compressors import make_compressor
from repro.core import SizeMetrics
from repro.mlkit import medape
from repro.predict import get_scheme

ALL_CODECS = ("sz3", "zfp", "szx", "sperr")


def _true_cr(comp, data) -> float:
    size = SizeMetrics()
    comp.set_metrics([size])
    comp.compress(data)
    cr = comp.get_metrics_results()["size:compression_ratio"]
    comp.set_metrics([])
    return cr


@pytest.mark.parametrize("codec", ALL_CODECS)
@pytest.mark.parametrize("scheme_name", ["khan2023", "tao2019"])
def test_untrained_schemes_all_codecs(benchmark, codec, scheme_name, hurricane):
    """Estimate vs truth across codecs for the no-training schemes."""
    scheme = get_scheme(scheme_name)
    entries = [hurricane.load_data(i) for i in range(0, len(hurricane), 7)]

    def run():
        truths, preds = [], []
        for data in entries:
            arr = data.array
            eb = 1e-4 * float(arr.max() - arr.min() or 1.0)
            comp = make_compressor(codec, pressio__abs=eb)
            res = scheme.req_metrics_opts(comp).evaluate(data).to_dict()
            preds.append(scheme.get_predictor(comp).predict(res))
            truths.append(_true_cr(comp, data))
        return medape(truths, preds)

    err = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["medape"] = round(err, 2)
    assert err < 250.0  # usable even in the paper's worst case (381 was zfp khan)


def test_sz3_predictor_stage_ablation(benchmark, pressure_field):
    """CR across SZ3's predictor stages; interp should lead on the
    smooth pressure field (SZ3's real-world default for a reason)."""
    arr = pressure_field.array
    eb = 1e-4 * float(arr.max() - arr.min())

    def run():
        out = {}
        for predictor in ("none", "lorenzo", "lorenzo2", "interp"):
            comp = make_compressor("sz3", pressio__abs=eb)
            comp.set_options({"sz3:predictor": predictor})
            out[predictor] = arr.nbytes / comp.compress(pressure_field).nbytes
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, cr in ratios.items():
        benchmark.extra_info[f"cr_{name}"] = round(cr, 2)
    assert ratios["lorenzo"] > ratios["none"], ratios
    assert ratios["interp"] > ratios["none"], ratios


def test_cross_dataset_transfer(benchmark):
    """Train FXRZ on Hurricane, deploy on the non-weather datasets.

    Out-of-domain transfer degrades versus in-domain training — the
    quantitative backing for future work 2's call to broaden training
    data.
    """
    from repro.dataset import HurricaneDataset, make_scientific_suite

    scheme = get_scheme("rahman2023")
    comp = make_compressor("sz3", pressio__abs=1e-3)

    def collect(dataset):
        rows, targets = [], []
        for i in range(len(dataset)):
            data = dataset.load_data(i)
            arr = data.array
            vrange = float(arr.max() - arr.min() or 1.0)
            for rel in (1e-5, 1e-4, 1e-3):
                c = make_compressor("sz3", pressio__abs=rel * vrange)
                res = scheme.req_metrics_opts(c).evaluate(data).to_dict()
                res.update(scheme.config_features(c))
                rows.append(res)
                targets.append(_true_cr(c, data))
        return rows, np.asarray(targets)

    def run():
        hur_rows, hur_y = collect(HurricaneDataset(shape=(16, 16, 8), timesteps=[0, 24]))
        suite = make_scientific_suite(timesteps=1)
        results = {}
        for name, ds in suite.items():
            test_rows, test_y = collect(ds)
            # Out-of-domain: trained on Hurricane only.
            transfer = scheme.get_predictor(comp)
            transfer.fit(hur_rows, hur_y)
            ood = medape(test_y, transfer.predict_many(test_rows))
            # In-domain: leave-one-out within the target dataset.
            joint = scheme.get_predictor(comp)
            joint.fit(hur_rows + test_rows[::2], np.concatenate([hur_y, test_y[::2]]))
            mixed = medape(test_y[1::2], joint.predict_many(test_rows[1::2]))
            results[name] = (ood, mixed)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    improved = 0
    for name, (ood, mixed) in results.items():
        benchmark.extra_info[f"{name}_transfer_medape"] = round(ood, 2)
        benchmark.extra_info[f"{name}_indomain_medape"] = round(mixed, 2)
        improved += mixed <= ood * 1.05
    # Adding in-domain data helps (or at worst ties) on most datasets.
    assert improved >= len(results) - 1
