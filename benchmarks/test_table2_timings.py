"""Table 2 (timing columns): per-stage costs of the three ported schemes.

Paper values (ms), Hurricane, 10-fold CV:

=============== ============= ============= ========== ======= =========
method          error-dep     error-agn     training   fit     inference
=============== ============= ============= ========== ======= =========
sz3 khan2023    5 ± .47       N/A           N/A        N/A     N/A
sz3 jin2022     518 ± .43     N/A           N/A        N/A     N/A
sz3 rahman2023  N/A           7 ± 0.51      322.8      370.34  0.135
zfp khan2023    5 ± .47       N/A           N/A        N/A     N/A
zfp rahman2023  N/A           7 ± .51       65.49      360.49  .09
=============== ============= ============= ========== ======= =========

Expected shape: khan ≪ compression time; jin is the slowest of the three
prediction stages (its probe covers the full array); rahman has *only*
an error-agnostic stage, a training cost equal to the compressor run,
a fit cost of a few hundred ms, and sub-ms inference.

Known deviation (see EXPERIMENTS.md): the paper measured jin *slower
than the compressor itself* and attributes that to C++ shared-pointer
overhead in their port — an artifact their future-work item 3 expects to
remove; our vectorised probe sits below the compression time, on the
side the authors project.
"""

import numpy as np
import pytest

from repro.compressors import make_compressor
from repro.predict import get_scheme


def _eb(data) -> float:
    arr = data.array
    return 1e-4 * float(arr.max() - arr.min())


def _evaluator(scheme_name, comp):
    return get_scheme(scheme_name).req_metrics_opts(comp)


@pytest.mark.parametrize("compressor", ["sz3", "zfp"])
def test_khan_error_dependent_stage(benchmark, compressor, pressure_field):
    comp = make_compressor(compressor, pressio__abs=_eb(pressure_field))
    scheme = get_scheme("khan2023")

    def stage():
        evaluator = scheme.req_metrics_opts(comp)
        return evaluator.evaluate(pressure_field)

    benchmark(stage)
    benchmark.extra_info["paper_ms"] = 5.0


def test_jin_error_dependent_stage(benchmark, pressure_field):
    comp = make_compressor("sz3", pressio__abs=_eb(pressure_field))
    scheme = get_scheme("jin2022")

    def stage():
        evaluator = scheme.req_metrics_opts(comp)
        return evaluator.evaluate(pressure_field)

    benchmark(stage)
    benchmark.extra_info["paper_ms"] = 518.0
    benchmark.extra_info["paper_note"] = (
        "paper number inflated by shared_ptr overhead in their port"
    )


@pytest.mark.parametrize("compressor", ["sz3", "zfp"])
def test_rahman_error_agnostic_stage(benchmark, compressor, pressure_field):
    comp = make_compressor(compressor, pressio__abs=_eb(pressure_field))
    scheme = get_scheme("rahman2023")

    def stage():
        evaluator = scheme.req_metrics_opts(comp)
        return evaluator.evaluate(pressure_field)

    benchmark(stage)
    benchmark.extra_info["paper_ms"] = 7.0


def test_rahman_fit_stage(benchmark, runner, observations):
    """Fit cost of the FXRZ forest on the campaign's sz3 observations."""
    scheme = get_scheme("rahman2023")
    comp = make_compressor("sz3", pressio__abs=1e-3)
    rows = [
        o for o in observations
        if o["compressor"] == "sz3" and o.get("scheme:rahman2023:supported")
    ]
    y = np.asarray([o["size:compression_ratio"] for o in rows])

    def fit():
        predictor = scheme.get_predictor(comp)
        predictor.fit(rows, y)
        return predictor

    benchmark(fit)
    benchmark.extra_info["n_train"] = len(rows)
    benchmark.extra_info["paper_ms"] = 370.34


def test_rahman_inference_stage(benchmark, runner, observations):
    """Single-row inference cost (paper: 0.135 ms on sz3)."""
    scheme = get_scheme("rahman2023")
    comp = make_compressor("sz3", pressio__abs=1e-3)
    rows = [
        o for o in observations
        if o["compressor"] == "sz3" and o.get("scheme:rahman2023:supported")
    ]
    y = np.asarray([o["size:compression_ratio"] for o in rows])
    predictor = scheme.get_predictor(comp)
    predictor.fit(rows, y)

    benchmark(predictor.predict, rows[0])
    benchmark.extra_info["paper_ms"] = 0.135


def test_stage_cost_ordering(benchmark):
    """khan ≪ jin on paper-scale data: jin's probe covers the whole
    array so its cost grows with the field, while khan's sampled probe
    stays flat.  At tiny grids fixed overheads mask the contrast, so
    this check uses a paper-scale 64×64×32 field.
    """
    import time

    from repro.dataset import HurricaneGenerator

    field = HurricaneGenerator(shape=(64, 64, 32), timesteps=2).generate("TC", 0)
    eb = 1e-4 * float(field.max() - field.min())
    comp = make_compressor("sz3", pressio__abs=eb)

    def measure():
        out = {}
        for name in ("khan2023", "jin2022"):
            scheme = get_scheme(name)
            t0 = time.perf_counter()
            scheme.req_metrics_opts(comp).evaluate(field)
            out[name] = time.perf_counter() - t0
        t0 = time.perf_counter()
        comp.compress(field)
        out["compress"] = time.perf_counter() - t0
        return out

    times = benchmark.pedantic(measure, rounds=5, iterations=1)
    assert times["khan2023"] < times["jin2022"], times
    assert times["khan2023"] < times["compress"], times
    benchmark.extra_info["khan_ms"] = round(times["khan2023"] * 1e3, 2)
    benchmark.extra_info["jin_ms"] = round(times["jin2022"] * 1e3, 2)
    benchmark.extra_info["compress_ms"] = round(times["compress"] * 1e3, 2)
