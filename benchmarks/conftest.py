"""Shared benchmark fixtures.

The benchmark suite regenerates every quantitative artefact of the paper
(see DESIGN.md's per-experiment index).  Scale is controlled by the
``REPRO_BENCH_SCALE`` environment variable:

* ``small`` (default) — 13 fields × 4 timesteps at 32×32×16; finishes in
  a couple of minutes on a laptop core;
* ``full``  — 13 fields × 48 timesteps at 48×48×24, the closest match to
  the paper's "all 48 timesteps and 13 fields" protocol this substrate
  affords.

Ground-truth observations are collected once per session through the
checkpointed runner and shared by the timing and quality benchmarks.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import CheckpointStore, ExperimentRunner
from repro.dataset import HurricaneDataset

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

if SCALE == "full":
    SHAPE = (48, 48, 24)
    TIMESTEPS = list(range(48))
else:
    SHAPE = (32, 32, 16)
    TIMESTEPS = [0, 12, 24, 36]

BOUNDS = (1e-6, 1e-4)
SCHEMES = ("khan2023", "jin2022", "rahman2023")


@pytest.fixture(scope="session")
def hurricane() -> HurricaneDataset:
    """The evaluation dataset at the configured scale."""
    return HurricaneDataset(shape=SHAPE, timesteps=TIMESTEPS)


@pytest.fixture(scope="session")
def pressure_field(hurricane):
    """One representative dense field (P at t=0) used by micro-benches."""
    return hurricane.load_data(hurricane.fields.index("P") * len(hurricane.steps))


@pytest.fixture(scope="session")
def sparse_field_data(hurricane):
    """One representative sparse field (QRAIN at t=0)."""
    return hurricane.load_data(hurricane.fields.index("QRAIN") * len(hurricane.steps))


@pytest.fixture(scope="session")
def runner(hurricane, tmp_path_factory) -> ExperimentRunner:
    store = CheckpointStore(str(tmp_path_factory.mktemp("bench") / "checkpoint.db"))
    return ExperimentRunner(
        hurricane,
        compressors=("sz3", "zfp"),
        bounds=BOUNDS,
        schemes=SCHEMES,
        store=store,
        n_folds=10,
    )


@pytest.fixture(scope="session")
def observations(runner):
    """Collected ground truth + scheme metrics for the whole campaign."""
    obs, stats, _ = runner.collect()
    assert stats.failed == 0, "collection tasks failed"
    return obs
