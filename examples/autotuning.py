#!/usr/bin/env python
"""Use case 2 (§2.1): OptZConfig/FXRZ-style configuration auto-tuning.

Find the loosest error bound whose predicted compression ratio first
meets a target CR — using a *trained* predictor so that the search costs
metric evaluations, not compressor runs.  This is where invalidation
reuse shines (Q1): the error-agnostic features are computed once per
field and reused across every candidate bound in the sweep.

Run:  python examples/autotuning.py
"""

import time

import numpy as np

from repro.compressors import make_compressor
from repro.core import ERROR_DEPENDENT, SizeMetrics
from repro.dataset import HurricaneDataset
from repro.predict import get_scheme

TARGET_CR = 6.0
CANDIDATE_BOUNDS = [10.0 ** e for e in (-6, -5.5, -5, -4.5, -4, -3.5, -3, -2.5, -2)]
TRAIN_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2)  # cover the whole sweep range


def train_predictor(scheme, dataset):
    """Fit rahman2023 on a training slice (several fields x bounds)."""
    rows, targets = [], []
    for i in range(len(dataset)):
        data = dataset.load_data(i)
        vrange = float(data.array.max() - data.array.min() or 1.0)
        for rel_eb in TRAIN_BOUNDS:
            comp = make_compressor("sz3", pressio__abs=rel_eb * vrange)
            results = scheme.req_metrics_opts(comp).evaluate(data).to_dict()
            results.update(scheme.config_features(comp))
            rows.append(results)
            size = SizeMetrics()
            comp.set_metrics([size])
            comp.compress(data)
            targets.append(comp.get_metrics_results()["size:compression_ratio"])
    predictor = scheme.get_predictor(make_compressor("sz3", pressio__abs=1e-4))
    predictor.fit(rows, targets)
    return predictor


def tune_field(scheme, predictor, data):
    """Sweep bounds from tight to loose; stop at the first predicted hit."""
    vrange = float(data.array.max() - data.array.min() or 1.0)
    comp = make_compressor("sz3", pressio__abs=CANDIDATE_BOUNDS[0] * vrange)
    evaluator = scheme.req_metrics_opts(comp)
    chosen = None
    for k, rel_eb in enumerate(CANDIDATE_BOUNDS):
        evaluator.set_options({"pressio:abs": rel_eb * vrange})
        # First sweep step computes everything; later steps invalidate
        # only the bound, so error-agnostic features are served from
        # the evaluator's cache.
        changed = None if k == 0 else ["pressio:abs"]
        results = evaluator.evaluate(
            data, changed=changed if changed is not None else ("predictors:error_agnostic", ERROR_DEPENDENT)
        )
        row = results.to_dict()
        row.update(scheme.config_features(comp))
        predicted = predictor.predict(row)
        if predicted >= TARGET_CR:
            chosen = (rel_eb, predicted)
            break
    return chosen, evaluator


def main() -> None:
    train_ds = HurricaneDataset(shape=(24, 24, 12), timesteps=[0, 16])
    scheme = get_scheme("rahman2023")
    print("training rahman2023 (FXRZ) on 2 timesteps x 13 fields x 5 bounds ...")
    t0 = time.perf_counter()
    predictor = train_predictor(scheme, train_ds)
    print(f"trained in {time.perf_counter() - t0:.1f}s\n")

    deploy = HurricaneDataset(shape=(24, 24, 12), timesteps=[32])
    print(f"{'field':10s} {'chosen rel eb':>13s} {'predicted CR':>13s} "
          f"{'actual CR':>10s} {'reused':>7s}")
    for i in range(len(deploy)):
        data = deploy.load_data(i)
        choice, evaluator = tune_field(scheme, predictor, data)
        field = data.metadata["field"]
        if choice is None:
            print(f"{field:10s} {'<none meets target>':>13s}")
            continue
        rel_eb, predicted = choice
        vrange = float(data.array.max() - data.array.min() or 1.0)
        comp = make_compressor("sz3", pressio__abs=rel_eb * vrange)
        size = SizeMetrics()
        comp.set_metrics([size])
        comp.compress(data)
        actual = comp.get_metrics_results()["size:compression_ratio"]
        stats = evaluator.stats()
        print(f"{field:10s} {rel_eb:13.2e} {predicted:13.2f} {actual:10.2f} "
              f"{stats['reused']:7d}")
    print(f"\ntarget CR was {TARGET_CR}; 'reused' counts metric evaluations "
          "served from the invalidation-aware cache during each sweep")


if __name__ == "__main__":
    main()
