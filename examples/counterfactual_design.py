#!/usr/bin/env python
"""Use case 4 (§2.1): counterfactual analysis for compressor design.

"Hundreds of person-hours go into the design, testing, and evaluation of
specialized lossy compressors ... If a prediction scheme can show with
some confidence that a particular method will ultimately prove
unfruitful for a particular application, it can be discarded early in
the design process" — Wang 2023 (ZPerf).

This example trains the ZPerf gray-box model on the *current* SZ3
configuration (first-order Lorenzo) and asks, without ever running the
alternatives: "what if the predictor stage were removed / doubled?"
The counterfactual estimates are then checked against actually building
and running each candidate.

Run:  python examples/counterfactual_design.py
"""

import numpy as np

from repro.compressors import make_compressor
from repro.core import SizeMetrics
from repro.dataset import HurricaneDataset
from repro.predict import get_scheme

CANDIDATE_ORDERS = {0: "none (quantize only)", 1: "lorenzo (shipped)", 2: "lorenzo2"}


def true_cr(data, eb, predictor_name: str) -> float:
    comp = make_compressor("sz3", pressio__abs=eb)
    comp.set_options({"sz3:predictor": predictor_name})
    size = SizeMetrics()
    comp.set_metrics([size])
    comp.compress(data)
    return comp.get_metrics_results()["size:compression_ratio"]


def main() -> None:
    dataset = HurricaneDataset(shape=(24, 24, 12), timesteps=[0, 8, 16, 24])
    scheme = get_scheme("wang2023", fraction=0.15)
    shipped = make_compressor("sz3", pressio__abs=1e-3)

    # -- train on the shipped configuration only -----------------------------
    rows, targets, ebs, entries = [], [], [], []
    for i in range(len(dataset)):
        data = dataset.load_data(i)
        arr = data.array
        eb = 1e-4 * float(arr.max() - arr.min() or 1.0)
        comp = make_compressor("sz3", pressio__abs=eb)
        rows.append(scheme.req_metrics_opts(comp).evaluate(data).to_dict())
        targets.append(true_cr(data, eb, "lorenzo"))
        ebs.append(eb)
        entries.append(data)
    predictor = scheme.get_predictor(shipped)
    predictor.fit(rows, targets)
    print(f"trained ZPerf on {len(rows)} observations of the shipped configuration\n")

    # -- counterfactual sweep over designs that were never run ----------------
    name_of = {0: "none", 1: "lorenzo", 2: "lorenzo2"}
    predicted_by, actual_by = {}, {}
    print(f"{'design':24s} {'pred. median CR':>16s} {'actual median CR':>17s} {'runs used':>18s}")
    for order, label in CANDIDATE_ORDERS.items():
        predicted_by[order] = float(np.median(
            [predictor.predict_counterfactual(r, order=order) for r in rows]
        ))
        actual_by[order] = float(np.median(
            [true_cr(d, eb, name_of[order]) for d, eb in zip(entries, ebs)]
        ))
        runs = "0 (counterfactual)" if order != 1 else f"{len(rows)} (training)"
        print(f"{label:24s} {predicted_by[order]:16.2f} {actual_by[order]:17.2f} {runs:>18s}")

    pred_rank = sorted(predicted_by, key=predicted_by.get, reverse=True)
    true_rank = sorted(actual_by, key=actual_by.get, reverse=True)
    print(
        f"\npredicted design ranking: {[name_of[o] for o in pred_rank]}"
        f"\nactual design ranking   : {[name_of[o] for o in true_rank]}"
        f"\nranking preserved: {pred_rank == true_rank} — the design question "
        "is answered without implementing or running the candidates."
    )


if __name__ == "__main__":
    main()
