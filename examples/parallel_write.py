#!/usr/bin/env python
"""Use case 3 (§2.1): accelerate parallel writes to a shared file.

HDF5-style parallel compressed writes need every rank's file *offset*
before the compressed sizes are known.  The trick (Jin 2022 / HDF5
integration): predict each chunk's compressed size, pre-allocate offsets
with a safety factor, write in parallel, and fall back to appending the
rare chunk that overflows its slot.  Conformal prediction intervals
(Ganguli 2023) let you *choose* the safety factor for a target
misprediction rate instead of guessing.

This example simulates the shared file as a byte buffer and reports how
many chunks each strategy had to re-append.

Run:  python examples/parallel_write.py
"""

import numpy as np

from repro.compressors import make_compressor
from repro.core import SizeMetrics
from repro.dataset import HurricaneDataset
from repro.predict import get_scheme

REL_BOUND = 1e-4


def collect(dataset, scheme):
    """Per-chunk metric rows + true compressed sizes (training data)."""
    rows, sizes, streams = [], [], []
    for i in range(len(dataset)):
        data = dataset.load_data(i)
        eb = REL_BOUND * float(data.array.max() - data.array.min() or 1.0)
        comp = make_compressor("sz3", pressio__abs=eb)
        results = scheme.req_metrics_opts(comp).evaluate(data).to_dict()
        results.update(scheme.config_features(comp))
        rows.append(results)
        size = SizeMetrics()
        comp.set_metrics([size])
        stream = comp.compress(data)
        sizes.append(stream.nbytes)
        streams.append(stream)
    return rows, np.asarray(sizes, dtype=float), streams


def simulate_write(predicted_slots, streams):
    """Lay chunks at predicted offsets; overflowing chunks fall back to
    appending at the end of the file (the slow path)."""
    offsets = np.concatenate(([0], np.cumsum(predicted_slots)[:-1]))
    end = float(np.sum(predicted_slots))
    fallbacks = 0
    for slot, stream in zip(predicted_slots, streams):
        if stream.nbytes > slot:
            fallbacks += 1
            end += stream.nbytes  # appended serially at the tail
    return fallbacks, end


def main() -> None:
    # Train on early timesteps, deploy on a later one (the storm has
    # moved and intensified, so this is genuine extrapolation).
    train_ds = HurricaneDataset(shape=(24, 24, 12), timesteps=[0, 4, 8, 12, 16, 20])
    deploy_ds = HurricaneDataset(shape=(24, 24, 12), timesteps=[30])
    scheme = get_scheme("ganguli2023", alpha=0.1, n_components=2)  # conformal intervals
    comp = make_compressor("sz3", pressio__abs=1e-3)

    rows, sizes, _ = collect(train_ds, scheme)
    predictor = scheme.get_predictor(comp)
    # Targets here are compressed *sizes*: predict bytes instead of CR.
    predictor.fit(rows, sizes)

    deploy_rows, true_sizes, streams = collect(deploy_ds, scheme)
    raw_bytes = sum(s.nbytes for s in streams)

    print(f"{'strategy':34s} {'fallbacks':>9s} {'file bytes':>12s}")
    # Strategy A: no prediction — reserve uncompressed size (always safe).
    uncompressed = np.full(len(streams), deploy_ds.load_data(0).nbytes, dtype=float)
    fb, end = simulate_write(uncompressed, streams)
    print(f"{'reserve uncompressed size':34s} {fb:9d} {int(end):12d}")

    # Strategy B: point prediction with a fixed 1.2x safety factor.
    points = predictor.predict_many(deploy_rows)
    fb, end = simulate_write(points * 1.2, streams)
    print(f"{'point prediction x1.2 safety':34s} {fb:9d} {int(end):12d}")

    # Strategy C: conformal upper bound (target <=10% misprediction).
    uppers = np.array([predictor.predict_interval(r)[2] for r in deploy_rows])
    fb, end = simulate_write(uppers, streams)
    print(f"{'conformal 90% upper bound':34s} {fb:9d} {int(end):12d}")

    print(f"\nactual compressed payload: {raw_bytes} bytes "
          f"({len(streams)} chunks)")
    print("conformal slots cost "
          f"{np.sum(uppers) / raw_bytes:.2f}x the payload vs "
          f"{np.sum(uncompressed) / raw_bytes:.2f}x for the no-prediction reserve")


if __name__ == "__main__":
    main()
