#!/usr/bin/env python
"""LibPressio-Predict-Bench at work: resilient distributed training (§4.3).

Demonstrates the bench's three headline behaviours on one machine:

1. **checkpointed collection** — a campaign is interrupted by injected
   faults, then *resumed*; only the missing task keys re-run;
2. **locality-aware scheduling** — tasks touching the same field land on
   the worker that already loaded it;
3. **virtual-cluster scaling** — the same campaign is replayed through
   the discrete-event simulator at 1..16 nodes to show how locality
   placement shapes the makespan the paper targets on real clusters.

Run:  python examples/distributed_training.py
"""

import os
import tempfile
import warnings

from repro.bench import (
    CheckpointStore,
    ExperimentRunner,
    FaultInjector,
    SimulatedCluster,
    TaskQueue,
    format_table2,
)
from repro.dataset import HurricaneDataset


def main() -> None:
    dataset = HurricaneDataset(shape=(24, 24, 12), timesteps=[0, 12, 24])
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(os.path.join(tmp, "bench.db"))
        runner = ExperimentRunner(
            dataset,
            compressors=("sz3", "zfp"),
            bounds=(1e-6, 1e-4),
            schemes=("khan2023", "jin2022", "rahman2023"),
            store=store,
            queue=TaskQueue(1, "serial", max_retries=1),
            n_folds=5,
        )

        # -- 1. a faulty first run: every 4th task crashes once and is
        # retried; every 9th is poisoned and genuinely fails ---------------
        tasks = runner.build_tasks()
        poison = {t.key() for i, t in enumerate(tasks) if i % 9 == 4}
        faulty = FaultInjector(
            runner.run_task, fail_first_attempt_every=4, poison_keys=poison
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)  # failures are the point
            _, stats, _ = runner.collect(task_fn=faulty)
        print(f"first run : {stats.completed} ok, {stats.failed} failed, "
              f"{stats.retries} retries, checkpoint holds {store.count()} rows")

        # -- 2. the restart: only the poisoned keys re-run ------------------
        _, stats2, _ = runner.collect()  # no fault injection this time
        print(f"restart   : re-ran {stats2.completed} missing tasks "
              f"(locality rate {stats2.locality_rate:.0%}); "
              f"checkpoint now {store.count()} rows")

        # -- 3. evaluate & report ------------------------------------------
        obs, _, _ = runner.collect()
        rows = runner.table2(obs)
        print()
        print(format_table2(rows, title="Hurricane (synthetic) — Table-2 layout"))

        # -- 4. replay the campaign through the virtual cluster -------------
        mean_compute = sum(o.get("time:compress", 0.05) for o in obs) / max(len(obs), 1)
        print("\nvirtual strong scaling (same tasks, simulated nodes):")
        print(f"{'nodes':>5s} {'makespan(s)':>12s} {'util':>6s} {'cache hits':>11s}")
        for nodes in (1, 2, 4, 8, 16):
            report = SimulatedCluster(nodes).run(
                runner.build_tasks(), lambda t: mean_compute
            )
            print(f"{nodes:5d} {report.makespan:12.2f} {report.utilisation:6.0%} "
                  f"{report.cache_hits:11d}")


if __name__ == "__main__":
    main()
