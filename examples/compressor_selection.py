#!/usr/bin/env python
"""Use case 1 (§2.1): choose the best compressor *without* running them all.

Tao 2019's original motivation: given several lossy compressors, use fast
CR estimates to pick the winner per field, then verify how often the
estimated ranking matches the true ranking.  The estimate "needs to be
fast but actually does not need to be tremendously accurate since it
needs to only preserve the ranking".

Run:  python examples/compressor_selection.py
"""

import time

from repro.compressors import make_compressor
from repro.core import SizeMetrics
from repro.dataset import HurricaneDataset
from repro.predict import get_scheme

COMPRESSORS = ("sz3", "zfp", "szx")
REL_BOUND = 1e-4


def true_cr(name: str, data, eb: float) -> float:
    comp = make_compressor(name, pressio__abs=eb)
    size = SizeMetrics()
    comp.set_metrics([size])
    comp.compress(data)
    return comp.get_metrics_results()["size:compression_ratio"]


def main() -> None:
    dataset = HurricaneDataset(shape=(32, 32, 16), timesteps=[0, 24])
    scheme = get_scheme("tao2019", fraction=0.1)

    agreements = 0
    est_seconds = 0.0
    true_seconds = 0.0
    print(f"{'field':10s} {'t':>3s}  {'est winner':12s} {'true winner':12s} match")
    for i in range(len(dataset)):
        data = dataset.load_data(i)
        eb = REL_BOUND * float(data.array.max() - data.array.min() or 1.0)

        t0 = time.perf_counter()
        estimates = {}
        for name in COMPRESSORS:
            comp = make_compressor(name, pressio__abs=eb)
            predictor = scheme.get_predictor(comp)
            results = scheme.req_metrics_opts(comp).evaluate(data)
            estimates[name] = predictor.predict(results.to_dict())
        est_seconds += time.perf_counter() - t0

        t0 = time.perf_counter()
        truths = {name: true_cr(name, data, eb) for name in COMPRESSORS}
        true_seconds += time.perf_counter() - t0

        est_winner = max(estimates, key=estimates.get)
        true_winner = max(truths, key=truths.get)
        agreements += est_winner == true_winner
        field = data.metadata["field"]
        step = data.metadata["timestep"]
        print(f"{field:10s} {step:3d}  {est_winner:12s} {true_winner:12s} "
              f"{'✓' if est_winner == true_winner else '✗'}")

    n = len(dataset)
    print(f"\nranking agreement: {agreements}/{n} ({100 * agreements / n:.0f}%)")
    print(f"estimation cost : {est_seconds:.2f}s   exhaustive cost: {true_seconds:.2f}s "
          f"({true_seconds / est_seconds:.1f}x slower)")


if __name__ == "__main__":
    main()
