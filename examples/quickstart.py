#!/usr/bin/env python
"""Quickstart: estimate a compression ratio without running the compressor.

This walks the inference flow of the paper's Figure 4:

1. load a dataset entry (a synthetic Hurricane Isabel field);
2. pick a compressor and a prediction scheme from the registries;
3. ask the scheme which metrics the prediction needs, evaluate them;
4. predict — and compare against the truth from actually compressing.

Run:  python examples/quickstart.py
"""

from repro.compressors import make_compressor
from repro.core import SizeMetrics, TimeMetrics
from repro.dataset import HurricaneDataset
from repro.predict import available_schemes, get_scheme


def main() -> None:
    # -- 1. data -----------------------------------------------------------
    dataset = HurricaneDataset(shape=(48, 48, 24), timesteps=[0])
    entry = dataset.fields.index("P")  # the pressure field: dense, smooth
    data = dataset.load_data(entry)
    print(f"loaded {data.data_id()}  shape={data.shape}  dtype={data.dtype}")

    # -- 2. compressor + scheme ----------------------------------------------
    vrange = float(data.array.max() - data.array.min())
    comp = make_compressor("sz3", pressio__abs=1e-4 * vrange)
    print(f"compressor: sz3 @ abs bound {comp.abs_bound:.3g}")
    print(f"available schemes: {', '.join(available_schemes())}")
    scheme = get_scheme("jin2022")  # analytic ratio-quality model, no training

    # -- 3. evaluate the metrics the scheme asks for ---------------------------
    predictor = scheme.get_predictor(comp)
    evaluator = scheme.req_metrics_opts(comp)
    results = evaluator.evaluate(data)
    results.merge(scheme.config_features(comp))
    print(f"metrics computed: {evaluator.computed}, "
          f"stage seconds: { {k: round(v, 4) for k, v in evaluator.stage_seconds.items()} }")

    # -- 4. predict vs truth ----------------------------------------------------
    estimated = predictor.predict(results.to_dict())

    size, timer = SizeMetrics(), TimeMetrics()
    comp.set_metrics([size, timer])
    comp.decompress(comp.compress(data))
    truth = comp.get_metrics_results()
    actual = truth["size:compression_ratio"]

    print(f"\nestimated CR : {estimated:8.2f}")
    print(f"actual CR    : {actual:8.2f}")
    print(f"APE          : {abs(estimated - actual) / actual * 100:8.2f}%")
    print(f"compress time: {truth['time:compress'] * 1e3:8.1f} ms "
          f"(the cost the prediction avoided)")


if __name__ == "__main__":
    main()
