"""Legacy setup shim.

The execution environment is offline with setuptools 65 and no ``wheel``
package, so PEP-660 editable installs fail; this shim lets
``pip install -e . --no-build-isolation`` take the classic
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
